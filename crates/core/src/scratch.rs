//! Reusable per-solve scratch state for batch workloads.
//!
//! The paper's motivating use case (§5.4) runs SSSP "from multiple
//! sources" over one preprocessed graph; a serving system runs it from
//! millions. Allocating a fresh tentative-distance array, membership
//! bitsets, frontier buffers, a heap and a bucket queue for every source is
//! exactly the cost that dominates small queries — so [`SolverScratch`]
//! owns all of it once and every solver re-enters through
//! [`crate::solver::SsspSolver::solve_with_scratch`].
//!
//! Reset costs per solve, after warmup:
//!
//! * the tentative-distance array is an [`EpochMinArray`] — epoch-based
//!   reset, **O(1)** (stale entries read as `∞` until overwritten), not an
//!   `O(n)` refill;
//! * membership bitsets are cleared wordwise (64 vertices per word, a
//!   memset 64× denser than the distance array they shadow);
//! * vertex buffers are `clear()`ed (length reset, capacity kept);
//! * heaps and the bucket queue are `clear()`ed through the `rs_ds`
//!   capacity-preserving contract.
//!
//! Nothing about a previous solve can leak into the next one: the epoch
//! advance plus the wordwise clears restore every structure to its initial
//! logical state, and the conformance suite interleaves solvers on one
//! scratch to prove it bit-identical with fresh-solver runs.
//!
//! What is *not* reused is the result itself: every
//! [`crate::SsspResult`] owns its `dist` vector, so one `O(n)` output copy
//! per solve is inherent to the API. The "no per-source distance-array
//! allocation" guarantee is about the *working* arrays, and is surfaced as
//! [`crate::StepStats::scratch_reused`] plus the [`SolverScratch::solves`]
//! / [`SolverScratch::reuses`] counters.
//!
//! The epoch encoding caps finite distances at 2⁴⁸ − 1
//! ([`rs_par::epoch::MAX_STORABLE`]); with `u32` edge weights this allows
//! shortest paths of ~65 000 maximum-weight hops, far beyond every graph
//! in the workspace, and debug builds assert the cap.

use rs_ds::{BucketQueue, DaryHeap, DecreaseKeyHeap, FibonacciHeap, PairingHeap, TreapArena};
use rs_graph::{CsrGraph, Dist, VertexId};
use rs_par::{AtomicBitset, EpochMinArray};

/// One successful relaxation recorded for inline parent derivation:
/// `(vertex, candidate distance, relaxing predecessor)`. A claim is applied
/// (`parent[v] = u`) only when the candidate still equals `dist[v]` at the
/// end of the substep that produced it — i.e. when `u` turned out to be the
/// winning writer.
pub type ParentClaim = (VertexId, Dist, VertexId);

/// Applies one substep's [`ParentClaim`] log: a claim whose candidate
/// still equals the current `δ(v)` came from the winning writer, so its
/// predecessor is recorded. Shared by the frontier and BST engines — the
/// winning-writer invariant lives here, in one place.
pub fn resolve_parent_claims(
    parent: &mut [VertexId],
    dist: &EpochMinArray,
    claims: &[ParentClaim],
) {
    for &(v, cand, u) in claims {
        if dist.load(v as usize) == cand {
            parent[v as usize] = u;
        }
    }
}

/// Drops parents of unsettled vertices after a goal-bounded early exit:
/// their claims may be stale (the claimed predecessor's own distance can
/// have improved without re-relaxing), so only settled vertices keep
/// parents — one O(n) sweep, the same order as the result's distance
/// snapshot. Shared by the frontier and BST engines.
pub fn clear_unsettled_parents(parent: &mut [VertexId], settled: &AtomicBitset) {
    for (v, slot) in parent.iter_mut().enumerate() {
        if *slot != u32::MAX && !settled.get(v) {
            *slot = u32::MAX;
        }
    }
}

/// Release-mode guard for the epoch encoding's 48-bit finite range: every
/// solver that stores tentative distances in the scratch's
/// [`EpochMinArray`] calls this with the graph's
/// [`CsrGraph::distance_bound`] before solving. Without it, a graph whose
/// distances could exceed 2⁴⁸ − 1 would silently drop relaxations (the
/// write-min treats over-range candidates as `∞`) and report wrong
/// results; failing loudly here turns that into a panic. The bound is
/// `n · L + 1`, i.e. ~65 000 maximum-`u32`-weight hops — far beyond every
/// graph in the workspace.
pub fn assert_distance_range(g: &CsrGraph) {
    assert!(
        g.distance_bound() <= rs_par::epoch::MAX_STORABLE,
        "graph distance bound {} exceeds the scratch epoch array's 48-bit range {}; \
         rescale the weights",
        g.distance_bound(),
        rs_par::epoch::MAX_STORABLE,
    );
}

/// The heap slot: at most one decrease-key heap is cached, of whichever
/// kind the last checkout used. Switching kinds on the same scratch simply
/// reallocates once.
#[derive(Debug, Default)]
pub enum HeapSlot {
    #[default]
    Empty,
    Dary(DaryHeap),
    Pairing(PairingHeap),
    Fibonacci(FibonacciHeap),
}

/// Heaps that can live in a [`SolverScratch`]'s [`HeapSlot`].
pub trait ScratchHeap: DecreaseKeyHeap + Sized {
    /// Takes the cached heap out of the slot if it is of this type.
    fn take(slot: &mut HeapSlot) -> Option<Self>;

    /// Stores this heap back into the slot for the next solve.
    fn put(self, slot: &mut HeapSlot);
}

macro_rules! impl_scratch_heap {
    ($heap:ty, $variant:ident) => {
        impl ScratchHeap for $heap {
            fn take(slot: &mut HeapSlot) -> Option<Self> {
                match std::mem::take(slot) {
                    HeapSlot::$variant(h) => Some(h),
                    other => {
                        *slot = other;
                        None
                    }
                }
            }

            fn put(self, slot: &mut HeapSlot) {
                *slot = HeapSlot::$variant(self);
            }
        }
    };
}

impl_scratch_heap!(DaryHeap, Dary);
impl_scratch_heap!(PairingHeap, Pairing);
impl_scratch_heap!(FibonacciHeap, Fibonacci);

/// Borrowed per-solve working state, produced by [`SolverScratch::view`].
///
/// The atomic pieces are shared references (they are written concurrently
/// inside substeps); the plain buffers are exclusive. `dists` keeps stale
/// content between solves by design — every engine that uses it writes an
/// entry before reading it.
pub struct ScratchView<'a> {
    /// Tentative distances, logically all-`∞` at view time (epoch-reset).
    pub dist: &'a EpochMinArray,
    /// Settled / visited flags, cleared at view time.
    pub settled: &'a AtomicBitset,
    /// Engine-specific membership flags, cleared at view time.
    pub mark_a: &'a AtomicBitset,
    /// Engine-specific membership flags, cleared at view time.
    pub mark_b: &'a AtomicBitset,
    /// Engine-specific membership flags, cleared at view time.
    pub mark_c: &'a AtomicBitset,
    /// Reusable vertex buffer (emptied at view time, capacity kept).
    pub verts_a: &'a mut Vec<VertexId>,
    /// Reusable vertex buffer (emptied at view time, capacity kept).
    pub verts_b: &'a mut Vec<VertexId>,
    /// Reusable vertex buffer (emptied at view time, capacity kept) — the
    /// engines' per-step `dirty` set, hoisted out of the substep loop.
    pub verts_c: &'a mut Vec<VertexId>,
    /// Reusable vertex buffer (emptied at view time, capacity kept) — the
    /// engines' per-substep `next_dirty` set.
    pub verts_d: &'a mut Vec<VertexId>,
    /// Reusable vertex buffer (emptied at view time, capacity kept) — the
    /// frontier engine's per-step fringe additions / the BST engine's
    /// per-substep claimed set.
    pub verts_e: &'a mut Vec<VertexId>,
    /// Reusable `(vertex, distance)` buffer (emptied at view time) — the
    /// synchronous-substep snapshot, hoisted out of the substep loop.
    pub pairs: &'a mut Vec<(VertexId, Dist)>,
    /// Reusable [`ParentClaim`] buffer (emptied at view time) — inline
    /// parent recording for goal-bounded `want_paths` queries.
    pub claims: &'a mut Vec<ParentClaim>,
    /// Reusable `(distance, vertex)` key buffer (emptied at view time) —
    /// the BST engine's per-substep treap batches.
    pub keys_a: &'a mut Vec<(Dist, VertexId)>,
    /// Reusable `(distance, vertex)` key buffer (emptied at view time).
    pub keys_b: &'a mut Vec<(Dist, VertexId)>,
    /// Reusable `(distance, vertex)` key buffer (emptied at view time).
    pub keys_c: &'a mut Vec<(Dist, VertexId)>,
    /// Reusable `(distance, vertex)` key buffer (emptied at view time).
    pub keys_d: &'a mut Vec<(Dist, VertexId)>,
    /// `n`-sized distance buffer with **stale** content (snapshots, `qkey`).
    pub dists: &'a mut Vec<Dist>,
}

/// The reverse half of a bidirectional point-to-point solve, produced by
/// [`SolverScratch::view_bidir`] next to the ordinary [`ScratchView`]. Kept
/// out of [`SolverScratch::view`] so forward-only solvers never materialise
/// (or pay the reset of) a second distance array.
pub struct ReverseScratch<'a> {
    /// Reverse tentative distances (from the goal over the transposed
    /// graph), logically all-`∞` at view time (epoch-reset).
    pub dist: &'a EpochMinArray,
    /// Reverse settled flags, cleared at view time.
    pub settled: &'a AtomicBitset,
}

/// Reusable working state for any [`crate::solver::SsspSolver`].
///
/// Protocol (what every `solve_with_scratch` implementation does):
///
/// 1. [`SolverScratch::begin`] with the graph's vertex count;
/// 2. borrow what the algorithm needs — [`SolverScratch::view`] for the
///    atomic arrays/buffers, [`SolverScratch::checkout_heap`] /
///    [`SolverScratch::checkout_bucket`] for the owned structures (returned
///    with the matching `return_*` call);
/// 3. [`SolverScratch::finish`], whose return value — `true` iff the solve
///    ran entirely on pre-allocated state — lands in
///    [`crate::StepStats::scratch_reused`].
///
/// A scratch adapts to whatever is thrown at it: bigger graphs or a
/// different algorithm family trigger one reallocation (a "cold" solve)
/// and everything after runs warm.
#[derive(Debug, Default)]
pub struct SolverScratch {
    n: usize,
    in_solve: bool,
    allocated: bool,
    solves: u64,
    reuses: u64,
    dist: EpochMinArray,
    settled: AtomicBitset,
    mark_a: AtomicBitset,
    mark_b: AtomicBitset,
    mark_c: AtomicBitset,
    verts_a: Vec<VertexId>,
    verts_b: Vec<VertexId>,
    verts_c: Vec<VertexId>,
    verts_d: Vec<VertexId>,
    verts_e: Vec<VertexId>,
    pairs: Vec<(VertexId, Dist)>,
    claims: Vec<ParentClaim>,
    keys_a: Vec<(Dist, VertexId)>,
    keys_b: Vec<(Dist, VertexId)>,
    keys_c: Vec<(Dist, VertexId)>,
    keys_d: Vec<(Dist, VertexId)>,
    dists: Vec<Dist>,
    dist_rev: EpochMinArray,
    mark_d: AtomicBitset,
    heap: HeapSlot,
    heap_rev: HeapSlot,
    bucket: Option<BucketQueue>,
    treap: TreapArena,
    treap_mark: u64,
}

impl SolverScratch {
    /// An empty scratch; structures materialise on first use.
    pub fn new() -> Self {
        SolverScratch::default()
    }

    /// A scratch pre-sized for graphs of `n` vertices (the first solve
    /// still counts as cold only if it has to allocate more).
    pub fn for_vertices(n: usize) -> Self {
        let mut s = SolverScratch::new();
        s.warm_up_n(n);
        s
    }

    /// A scratch warmed for `g` — see [`SolverScratch::warm_up`].
    pub fn for_graph(g: &CsrGraph) -> Self {
        let mut s = SolverScratch::new();
        s.warm_up(g);
        s
    }

    /// Pre-sizes the shared working structures for graphs of `g`'s vertex
    /// count — the tentative-distance epoch array, all bitsets, and the
    /// stale distance buffer — so a latency-critical *first* query runs
    /// without the cold allocation spike and reports
    /// [`crate::StepStats::scratch_reused`] `= true`. The batch layer
    /// calls this (through `SsspSolver::warm_scratch`) when creating
    /// per-worker scratches; algorithm-specific structures — the
    /// engines' frontier/substep buffers
    /// ([`SolverScratch::warm_engine_buffers`]), the heap, the bucket
    /// queue, the treap arena — are warmed by the solvers' own
    /// `warm_scratch` overrides (or sized on first use), so a Dijkstra or
    /// Bellman–Ford worker never pays for buffers only the engines read.
    pub fn warm_up(&mut self, g: &CsrGraph) {
        self.warm_up_n(g.num_vertices());
    }

    fn warm_up_n(&mut self, n: usize) {
        self.begin(n);
        let _ = self.view();
        // Warming is not a solve: undo begin()'s bookkeeping.
        self.in_solve = false;
        self.solves -= 1;
    }

    /// The lean counterpart of [`SolverScratch::warm_up`]: pre-sizes only
    /// the visited bitset — all that BFS-style solvers
    /// ([`SolverScratch::visited_set`]) ever touch — so their per-worker
    /// scratches skip the 16-bytes-per-vertex distance structures
    /// entirely.
    pub fn warm_up_lean(&mut self, g: &CsrGraph) {
        self.begin(g.num_vertices());
        let _ = self.visited_set();
        self.in_solve = false;
        self.solves -= 1;
    }

    /// Reserves full-`n` capacity in every engine-side vertex/pair/claim/
    /// key buffer — the engine half of [`SolverScratch::warm_up`], called
    /// by the radius-stepping solvers' `warm_scratch`. The vertex and key
    /// sets are bounded by `n`, so this covers them outright; the claims
    /// log can exceed `n` in one substep on dense graphs (one entry per
    /// *successful* relaxation), in which case it grows once to its
    /// high-water capacity and stays there — amortised growth the scratch
    /// counters deliberately do not flag (like all `Vec` capacity growth
    /// here; the counters track the O(n) structures and the checked-out
    /// heap/bucket/arena).
    pub fn warm_engine_buffers(&mut self, n: usize) {
        fn to_capacity<T>(v: &mut Vec<T>, n: usize) {
            v.reserve(n.saturating_sub(v.len()));
        }
        to_capacity(&mut self.verts_a, n);
        to_capacity(&mut self.verts_b, n);
        to_capacity(&mut self.verts_c, n);
        to_capacity(&mut self.verts_d, n);
        to_capacity(&mut self.verts_e, n);
        to_capacity(&mut self.pairs, n);
        to_capacity(&mut self.claims, n);
        to_capacity(&mut self.keys_a, n);
        to_capacity(&mut self.keys_b, n);
        to_capacity(&mut self.keys_c, n);
        to_capacity(&mut self.keys_d, n);
    }

    /// Opens a solve over `n` vertices. Must precede any borrow.
    pub fn begin(&mut self, n: usize) {
        debug_assert!(!self.in_solve, "begin() without finish()");
        self.n = n;
        self.in_solve = true;
        self.allocated = false;
        self.solves += 1;
    }

    /// Closes the solve; returns `true` iff no scratch-managed allocation
    /// happened since [`SolverScratch::begin`] (the value of
    /// [`crate::StepStats::scratch_reused`]).
    pub fn finish(&mut self) -> bool {
        debug_assert!(self.in_solve, "finish() without begin()");
        self.in_solve = false;
        let reused = !self.allocated;
        self.reuses += u64::from(reused);
        reused
    }

    /// Solves opened so far (counts the one in flight).
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Solves that completed without any scratch-managed allocation.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Materialises and resets only the settled/visited bitset — the lean
    /// path for solvers that need nothing else (BFS, the unweighted
    /// engine), so a BFS-only scratch never pays for the 16-bytes-per-
    /// vertex distance structures of [`SolverScratch::view`].
    pub fn visited_set(&mut self) -> &AtomicBitset {
        debug_assert!(self.in_solve, "visited_set() outside begin()/finish()");
        if self.settled.len() < self.n {
            self.settled = AtomicBitset::new(self.n);
            self.allocated = true;
        } else {
            self.settled.clear_all();
        }
        &self.settled
    }

    /// Materialises and resets the shared working state for this solve.
    /// Call at most once per [`SolverScratch::begin`] (each call resets).
    pub fn view(&mut self) -> ScratchView<'_> {
        self.reset_forward();
        ScratchView {
            dist: &self.dist,
            settled: &self.settled,
            mark_a: &self.mark_a,
            mark_b: &self.mark_b,
            mark_c: &self.mark_c,
            verts_a: &mut self.verts_a,
            verts_b: &mut self.verts_b,
            verts_c: &mut self.verts_c,
            verts_d: &mut self.verts_d,
            verts_e: &mut self.verts_e,
            pairs: &mut self.pairs,
            claims: &mut self.claims,
            keys_a: &mut self.keys_a,
            keys_b: &mut self.keys_b,
            keys_c: &mut self.keys_c,
            keys_d: &mut self.keys_d,
            dists: &mut self.dists,
        }
    }

    /// Materialises and resets the working state of a bidirectional
    /// point-to-point solve: the ordinary forward [`ScratchView`] plus the
    /// reverse distance array and settled bitset. Same contract as
    /// [`SolverScratch::view`] (at most once per `begin`, each call
    /// resets); the two halves borrow disjoint fields.
    pub fn view_bidir(&mut self) -> (ScratchView<'_>, ReverseScratch<'_>) {
        self.reset_forward();
        let n = self.n;
        self.allocated |= self.dist_rev.ensure(n);
        self.dist_rev.advance();
        if self.mark_d.len() < n {
            self.mark_d = AtomicBitset::new(n);
            self.allocated = true;
        } else {
            self.mark_d.clear_all();
        }
        (
            ScratchView {
                dist: &self.dist,
                settled: &self.settled,
                mark_a: &self.mark_a,
                mark_b: &self.mark_b,
                mark_c: &self.mark_c,
                verts_a: &mut self.verts_a,
                verts_b: &mut self.verts_b,
                verts_c: &mut self.verts_c,
                verts_d: &mut self.verts_d,
                verts_e: &mut self.verts_e,
                pairs: &mut self.pairs,
                claims: &mut self.claims,
                keys_a: &mut self.keys_a,
                keys_b: &mut self.keys_b,
                keys_c: &mut self.keys_c,
                keys_d: &mut self.keys_d,
                dists: &mut self.dists,
            },
            ReverseScratch { dist: &self.dist_rev, settled: &self.mark_d },
        )
    }

    /// The shared reset behind [`SolverScratch::view`] /
    /// [`SolverScratch::view_bidir`].
    fn reset_forward(&mut self) {
        debug_assert!(self.in_solve, "view() outside begin()/finish()");
        let n = self.n;
        self.allocated |= self.dist.ensure(n);
        self.dist.advance();
        for bits in [&mut self.settled, &mut self.mark_a, &mut self.mark_b, &mut self.mark_c] {
            if bits.len() < n {
                *bits = AtomicBitset::new(n);
                self.allocated = true;
            } else {
                bits.clear_all();
            }
        }
        if self.dists.len() < n {
            self.dists.resize(n, 0);
            self.allocated = true;
        }
        self.verts_a.clear();
        self.verts_b.clear();
        self.verts_c.clear();
        self.verts_d.clear();
        self.verts_e.clear();
        self.pairs.clear();
        self.claims.clear();
        self.keys_a.clear();
        self.keys_b.clear();
        self.keys_c.clear();
        self.keys_d.clear();
    }

    /// Pre-sizes the reverse distance array and settled bitset (plus the
    /// forward structures, like [`SolverScratch::warm_up`]) so a solver
    /// configured for bidirectional point-to-point runs its first warm
    /// query allocation-free.
    pub fn warm_up_bidir(&mut self, g: &CsrGraph) {
        self.begin(g.num_vertices());
        let _ = self.view_bidir();
        // Warming is not a solve: undo begin()'s bookkeeping.
        self.in_solve = false;
        self.solves -= 1;
    }

    /// Checks out a cleared decrease-key heap covering the current vertex
    /// count, reusing the cached one when type and capacity match. Return
    /// it with [`SolverScratch::return_heap`] so the next solve can reuse
    /// it.
    pub fn checkout_heap<H: ScratchHeap>(&mut self) -> H {
        debug_assert!(self.in_solve, "checkout_heap() outside begin()/finish()");
        match H::take(&mut self.heap) {
            Some(mut h) if h.capacity() >= self.n => {
                h.clear();
                h
            }
            _ => {
                self.allocated = true;
                H::with_capacity(self.n)
            }
        }
    }

    /// Returns a heap checked out with [`SolverScratch::checkout_heap`].
    pub fn return_heap<H: ScratchHeap>(&mut self, heap: H) {
        heap.put(&mut self.heap);
    }

    /// Checks out the second cleared decrease-key heap — the reverse
    /// frontier of a bidirectional solve, cached in its own slot so both
    /// directions run warm. Return it with
    /// [`SolverScratch::return_heap_rev`].
    pub fn checkout_heap_rev<H: ScratchHeap>(&mut self) -> H {
        debug_assert!(self.in_solve, "checkout_heap_rev() outside begin()/finish()");
        match H::take(&mut self.heap_rev) {
            Some(mut h) if h.capacity() >= self.n => {
                h.clear();
                h
            }
            _ => {
                self.allocated = true;
                H::with_capacity(self.n)
            }
        }
    }

    /// Returns a heap checked out with
    /// [`SolverScratch::checkout_heap_rev`].
    pub fn return_heap_rev<H: ScratchHeap>(&mut self, heap: H) {
        heap.put(&mut self.heap_rev);
    }

    /// Checks out a cleared ∆-stepping bucket queue compatible with
    /// `(current n, delta, max_weight)`, reusing the cached one when it
    /// fits. Return it with [`SolverScratch::return_bucket`].
    pub fn checkout_bucket(&mut self, delta: u64, max_weight: u64) -> BucketQueue {
        debug_assert!(self.in_solve, "checkout_bucket() outside begin()/finish()");
        match self.bucket.take() {
            Some(mut q) if q.fits(self.n, delta, max_weight) => {
                q.clear();
                q
            }
            _ => {
                self.allocated = true;
                BucketQueue::new(self.n, delta, max_weight)
            }
        }
    }

    /// Returns a bucket queue checked out with
    /// [`SolverScratch::checkout_bucket`].
    pub fn return_bucket(&mut self, queue: BucketQueue) {
        self.bucket = Some(queue);
    }

    /// Checks out the treap node arena (the BST engine's `Q`/`R` node
    /// pool). Return it with [`SolverScratch::return_treap_arena`], which
    /// flags the solve cold iff the arena had to mint fresh nodes while
    /// checked out.
    pub fn checkout_treap_arena(&mut self) -> TreapArena {
        debug_assert!(self.in_solve, "checkout_treap_arena() outside begin()/finish()");
        self.treap_mark = self.treap.created();
        std::mem::take(&mut self.treap)
    }

    /// Returns the arena checked out with
    /// [`SolverScratch::checkout_treap_arena`]; node mints since checkout
    /// count as scratch-managed allocations.
    pub fn return_treap_arena(&mut self, arena: TreapArena) {
        if arena.created() > self.treap_mark {
            self.allocated = true;
        }
        self.treap = arena;
    }

    /// Pre-sizes the cached heap slot for graphs of `n` vertices without
    /// opening a solve — the heap half of [`SolverScratch::warm_up`],
    /// called by the Dijkstra solver's `warm_scratch` (only the solver
    /// knows its heap kind).
    pub fn warm_heap<H: ScratchHeap>(&mut self, n: usize) {
        let heap = match H::take(&mut self.heap) {
            Some(h) if h.capacity() >= n => h,
            _ => H::with_capacity(n),
        };
        heap.put(&mut self.heap);
    }

    /// Pre-sizes the reverse heap slot — the bidirectional counterpart of
    /// [`SolverScratch::warm_heap`].
    pub fn warm_heap_rev<H: ScratchHeap>(&mut self, n: usize) {
        let heap = match H::take(&mut self.heap_rev) {
            Some(h) if h.capacity() >= n => h,
            _ => H::with_capacity(n),
        };
        heap.put(&mut self.heap_rev);
    }

    /// Pre-sizes the cached bucket queue without opening a solve — the
    /// ∆-stepping half of [`SolverScratch::warm_up`].
    pub fn warm_bucket(&mut self, n: usize, delta: u64, max_weight: u64) {
        let queue = match self.bucket.take() {
            Some(q) if q.fits(n, delta, max_weight) => q,
            _ => BucketQueue::new(n, delta, max_weight),
        };
        self.bucket = Some(queue);
    }

    /// Pre-mints `nodes` treap-arena nodes without opening a solve — the
    /// BST-engine half of [`SolverScratch::warm_up`].
    pub fn warm_treap_arena(&mut self, nodes: usize) {
        self.treap.reserve_nodes(nodes);
    }
}

/// How many idle scratches a [`ScratchPool`] retains by default: enough
/// for every pool worker on any machine this workspace targets, small
/// enough that a burst never pins more than a few dozen working sets.
pub const DEFAULT_POOL_RETAIN: usize = 32;

/// A concurrent free-list of [`SolverScratch`] instances.
///
/// [`crate::execute_many_to_many`] fans table rows over the compute pool
/// with one scratch per pool task; before pooling, every *table* paid
/// that creation (and warm-up allocation) again even when an identical
/// table had just run. The pool closes the loop: [`ScratchPool::checkout`]
/// hands out a previously-used scratch when one is idle (its structures
/// already sized — the solver's `warm_scratch` then verifies fit in O(1)
/// per structure), and the [`PooledScratch`] guard returns it on drop.
/// At most [`ScratchPool::retain`] idle scratches are kept; returns
/// beyond that are dropped, bounding idle memory.
///
/// Counters: [`ScratchPool::created`] increments only when a checkout
/// finds the free list empty — under a steady stream of tables it
/// stabilises at the peak task concurrency, which is the observable
/// "repeated tables stop allocating" guarantee the serving layer tests.
pub struct ScratchPool {
    free: std::sync::Mutex<Vec<SolverScratch>>,
    retain: usize,
    created: std::sync::atomic::AtomicU64,
    reused: std::sync::atomic::AtomicU64,
}

impl Default for ScratchPool {
    fn default() -> Self {
        ScratchPool::new()
    }
}

impl ScratchPool {
    /// An empty pool retaining up to [`DEFAULT_POOL_RETAIN`] idle
    /// scratches. `const`, so a pool can live in a `static`.
    pub const fn new() -> Self {
        ScratchPool::with_retain(DEFAULT_POOL_RETAIN)
    }

    /// An empty pool retaining up to `retain` idle scratches (0 disables
    /// reuse entirely — every checkout creates, every return drops).
    pub const fn with_retain(retain: usize) -> Self {
        ScratchPool {
            free: std::sync::Mutex::new(Vec::new()),
            retain,
            created: std::sync::atomic::AtomicU64::new(0),
            reused: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Takes a scratch from the free list, or creates one if none is
    /// idle. The guard returns it automatically on drop.
    pub fn checkout(&self) -> PooledScratch<'_> {
        use std::sync::atomic::Ordering;
        let recycled = self.free.lock().unwrap().pop();
        let scratch = match recycled {
            Some(s) => {
                // ORDERING: created/reused are advisory telemetry counters
                // — nothing is published through them and readers only want
                // eventually-consistent totals.
                self.reused.fetch_add(1, Ordering::Relaxed);
                s
            }
            None => {
                // ORDERING: advisory telemetry (see above).
                self.created.fetch_add(1, Ordering::Relaxed);
                SolverScratch::new()
            }
        };
        PooledScratch { scratch: Some(scratch), pool: self }
    }

    /// Scratches created because the free list was empty at checkout.
    pub fn created(&self) -> u64 {
        // ORDERING: advisory telemetry read (see checkout).
        self.created.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Checkouts served from the free list.
    pub fn reused(&self) -> u64 {
        // ORDERING: advisory telemetry read (see checkout).
        self.reused.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Idle scratches currently retained.
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap().len()
    }

    /// The retention cap this pool was built with.
    pub fn retain(&self) -> usize {
        self.retain
    }

    fn put_back(&self, scratch: SolverScratch) {
        let mut free = self.free.lock().unwrap();
        if free.len() < self.retain {
            free.push(scratch);
        }
        // else: drop — the pool never holds more than `retain` working sets.
    }
}

/// Checkout guard for [`ScratchPool`]: derefs to [`SolverScratch`] and
/// returns the scratch to its pool on drop (subject to the retention
/// cap). A panicking solve drops the guard mid-solve; the scratch goes
/// back dirty, which is safe — `begin` resets all logical state.
pub struct PooledScratch<'p> {
    scratch: Option<SolverScratch>,
    pool: &'p ScratchPool,
}

impl std::ops::Deref for PooledScratch<'_> {
    type Target = SolverScratch;
    fn deref(&self) -> &SolverScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut SolverScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool.put_back(scratch);
        }
    }
}

/// The process-wide pool behind [`crate::execute_many_to_many`]: every
/// table query in the process draws its per-task scratches here, so
/// repeated tables — a serving workload's steady state — stop creating
/// scratches once the pool has seen the peak task concurrency.
pub fn global_scratch_pool() -> &'static ScratchPool {
    static POOL: ScratchPool = ScratchPool::new();
    &POOL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_warm() {
        let mut s = SolverScratch::new();
        s.begin(100);
        let view = s.view();
        view.dist.store(3, 7);
        assert!(view.settled.set(5));
        view.verts_a.push(9);
        assert!(!s.finish(), "first solve allocates");
        assert_eq!((s.solves(), s.reuses()), (1, 0));

        s.begin(100);
        let view = s.view();
        assert_eq!(view.dist.load(3), u64::MAX, "epoch reset");
        assert!(!view.settled.get(5), "bitset cleared");
        assert!(view.verts_a.is_empty(), "buffer emptied");
        assert!(s.finish(), "second solve reuses everything");
        assert_eq!((s.solves(), s.reuses()), (2, 1));

        // A smaller graph also runs warm.
        s.begin(10);
        let _ = s.view();
        assert!(s.finish());

        // A bigger graph reallocates once, then runs warm again.
        s.begin(1000);
        let _ = s.view();
        assert!(!s.finish());
        s.begin(1000);
        let _ = s.view();
        assert!(s.finish());
    }

    #[test]
    fn visited_set_is_lean_and_cleared() {
        let mut s = SolverScratch::new();
        s.begin(100);
        assert!(s.visited_set().set(7));
        assert!(!s.finish(), "first solve allocates the bitset");
        s.begin(100);
        assert!(!s.visited_set().get(7), "cleared per solve");
        assert!(s.finish(), "bitset-only reuse is warm");
    }

    #[test]
    fn bidir_view_cold_then_warm() {
        let mut s = SolverScratch::new();
        s.begin(80);
        {
            let (view, rev) = s.view_bidir();
            view.dist.store(1, 5);
            rev.dist.store(2, 9);
            assert!(rev.settled.set(3));
        }
        assert!(!s.finish(), "first bidir solve allocates");

        s.begin(80);
        {
            let (view, rev) = s.view_bidir();
            assert_eq!(view.dist.load(1), u64::MAX, "forward epoch reset");
            assert_eq!(rev.dist.load(2), u64::MAX, "reverse epoch reset");
            assert!(!rev.settled.get(3), "reverse bitset cleared");
        }
        assert!(s.finish(), "second bidir solve reuses everything");

        // A plain forward view never pays for the reverse structures.
        s.begin(80);
        let _ = s.view();
        assert!(s.finish());
    }

    #[test]
    fn warm_up_bidir_makes_first_solve_warm() {
        let g = rs_graph::gen::grid2d(8, 8);
        let mut s = SolverScratch::new();
        s.warm_up_bidir(&g);
        s.warm_heap::<DaryHeap>(g.num_vertices());
        s.warm_heap_rev::<DaryHeap>(g.num_vertices());
        assert_eq!(s.solves(), 0, "warming is not a solve");
        s.begin(g.num_vertices());
        let hf: DaryHeap = s.checkout_heap();
        let hr: DaryHeap = s.checkout_heap_rev();
        s.return_heap(hf);
        s.return_heap_rev(hr);
        let _ = s.view_bidir();
        assert!(s.finish(), "first bidir query after warm-up must not allocate");
    }

    #[test]
    fn distance_range_guard_accepts_normal_graphs() {
        let g = rs_graph::gen::grid2d(10, 10);
        assert_distance_range(&g);
    }

    #[test]
    #[should_panic(expected = "48-bit range")]
    fn distance_range_guard_rejects_oversized_bounds() {
        // n · L + 1 ≈ 3.0e14 > 2^48 − 1 ≈ 2.8e14: distances on this graph
        // could overflow the epoch encoding, so solvers must refuse it
        // loudly instead of silently dropping relaxations in release.
        let mut b = rs_graph::EdgeListBuilder::new(70_000);
        b.add_edge(0, 1, u32::MAX);
        assert_distance_range(&b.build());
    }

    #[test]
    fn for_vertices_prewarms() {
        let mut s = SolverScratch::for_vertices(64);
        assert_eq!(s.solves(), 0);
        s.begin(64);
        let _ = s.view();
        assert!(s.finish(), "pre-sized scratch starts warm");
    }

    #[test]
    fn heap_slot_reuse_and_type_switch() {
        let mut s = SolverScratch::new();
        s.begin(50);
        let mut h: DaryHeap = s.checkout_heap();
        h.push_or_decrease(1, 10);
        s.return_heap(h);
        assert!(!s.finish(), "cold: heap allocated");

        s.begin(50);
        let h: DaryHeap = s.checkout_heap();
        assert!(h.is_empty(), "checked-out heap is cleared");
        assert_eq!(h.capacity(), 50);
        s.return_heap(h);
        assert!(s.finish(), "warm: heap reused");

        s.begin(50);
        let h: PairingHeap = s.checkout_heap();
        s.return_heap(h);
        assert!(!s.finish(), "switching heap kinds reallocates once");

        s.begin(50);
        let h: PairingHeap = s.checkout_heap();
        s.return_heap(h);
        assert!(s.finish());
    }

    #[test]
    fn warm_up_makes_first_solve_warm() {
        let g = rs_graph::gen::grid2d(20, 20);
        let mut s = SolverScratch::for_graph(&g);
        assert_eq!(s.solves(), 0, "warming is not a solve");
        s.begin(g.num_vertices());
        let view = s.view();
        view.verts_c.push(7);
        view.pairs.push((1, 2));
        view.keys_d.push((3, 4));
        assert!(s.finish(), "first query after warm_up must not allocate");
        assert_eq!((s.solves(), s.reuses()), (1, 1));
    }

    #[test]
    fn treap_arena_checkout_tracks_mints() {
        let mut s = SolverScratch::new();
        s.begin(10);
        let mut arena = s.checkout_treap_arena();
        let t = rs_ds::Treap::from_sorted_in(&[(1, 0), (2, 1)], &mut arena);
        arena.recycle(t);
        s.return_treap_arena(arena);
        assert!(!s.finish(), "minting nodes is a cold solve");

        s.begin(10);
        let mut arena = s.checkout_treap_arena();
        let t = rs_ds::Treap::from_sorted_in(&[(5, 0), (9, 1)], &mut arena);
        arena.recycle(t);
        s.return_treap_arena(arena);
        assert!(s.finish(), "recycled nodes make the next solve warm");
    }

    #[test]
    fn warm_treap_arena_prewarms_pool() {
        let mut s = SolverScratch::new();
        s.warm_treap_arena(4);
        s.begin(10);
        let mut arena = s.checkout_treap_arena();
        let t = rs_ds::Treap::from_sorted_in(&[(1, 0), (2, 1), (3, 2)], &mut arena);
        arena.recycle(t);
        s.return_treap_arena(arena);
        assert!(s.finish(), "prewarmed pool covers the solve");
    }

    #[test]
    fn warm_heap_and_bucket_prewarm_slots() {
        let mut s = SolverScratch::new();
        s.warm_heap::<DaryHeap>(64);
        s.begin(64);
        let h: DaryHeap = s.checkout_heap();
        s.return_heap(h);
        assert!(s.finish(), "prewarmed heap checkout is warm");

        s.warm_bucket(64, 5, 100);
        s.begin(64);
        let q = s.checkout_bucket(5, 100);
        s.return_bucket(q);
        assert!(s.finish(), "prewarmed bucket checkout is warm");
    }

    #[test]
    fn bucket_reuse_keyed_on_parameters() {
        let mut s = SolverScratch::new();
        s.begin(40);
        let q = s.checkout_bucket(5, 100);
        s.return_bucket(q);
        assert!(!s.finish());

        s.begin(40);
        let mut q = s.checkout_bucket(5, 100);
        assert!(q.is_empty());
        q.insert_or_decrease(3, 12);
        s.return_bucket(q);
        assert!(s.finish(), "same parameters reuse the queue");

        s.begin(40);
        let q = s.checkout_bucket(7, 100);
        s.return_bucket(q);
        assert!(!s.finish(), "different delta reallocates");
    }

    #[test]
    fn pool_reuses_returned_scratches() {
        let pool = ScratchPool::new();
        {
            let mut a = pool.checkout();
            a.begin(64);
            let _ = a.view();
            a.finish();
        } // returned on drop
        assert_eq!((pool.created(), pool.reused(), pool.idle()), (1, 0, 1));

        {
            let mut b = pool.checkout();
            // The recycled scratch still has its structures: a same-size
            // solve runs warm straight out of the pool.
            b.begin(64);
            let _ = b.view();
            assert!(b.finish(), "pooled scratch is pre-sized");
        }
        assert_eq!((pool.created(), pool.reused(), pool.idle()), (1, 1, 1));
    }

    #[test]
    fn pool_creates_under_concurrent_checkout() {
        let pool = ScratchPool::new();
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(pool.created(), 2, "no idle scratch: both created");
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.checkout();
        assert_eq!(pool.reused(), 1);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pool_retention_cap_bounds_idle_memory() {
        let pool = ScratchPool::with_retain(2);
        let guards: Vec<_> = (0..5).map(|_| pool.checkout()).collect();
        assert_eq!(pool.created(), 5);
        drop(guards);
        assert_eq!(pool.idle(), 2, "returns beyond the cap are dropped");

        let zero = ScratchPool::with_retain(0);
        drop(zero.checkout());
        assert_eq!(zero.idle(), 0, "retain 0 disables pooling");
        drop(zero.checkout());
        assert_eq!(zero.created(), 2);
        assert_eq!(zero.reused(), 0);
    }

    #[test]
    fn pool_checkout_is_thread_safe() {
        let pool = ScratchPool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for round in 0..50 {
                        let mut g = pool.checkout();
                        g.begin(32);
                        let _ = g.view();
                        g.finish();
                        drop(g);
                        let _ = round;
                    }
                });
            }
        });
        assert_eq!(pool.created() + pool.reused(), 200);
        assert!(pool.created() <= 4, "at most one creation per concurrent thread");
        assert!(pool.idle() <= 4);
    }
}
