//! Exact (brute-force) computation of the paper's structural quantities,
//! for validating the fast paths on small graphs.
//!
//! * [`dist_hops`] — per-vertex `(d(u,v), d̂(u,v))`: shortest distance and
//!   the hop count of the hop-minimal shortest path (Definition 1).
//! * [`k_radius`] — `r̄_k(u) = min{ d(u,v) : d̂(u,v) > k }` (Definition 2).
//! * [`ball_size`] — `|B(u, r)|` (§2).
//! * [`check_k_rho_graph`] — verifies Definition 4 plus Lemma 4.1's
//!   preconditions for a radius assignment.
//! * [`step_bound`] / [`substep_bound`] — the Theorem 3.2/3.3 bounds.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rs_graph::{CsrGraph, Dist, VertexId, INF};

/// Exact `(distance, min-hop)` pairs from `source` (full Dijkstra ordered
/// lexicographically by `(dist, hops)`).
pub fn dist_hops(g: &CsrGraph, source: VertexId) -> Vec<(Dist, u32)> {
    let n = g.num_vertices();
    let mut best: Vec<(Dist, u32)> = vec![(INF, u32::MAX); n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    best[source as usize] = (0, 0);
    heap.push(Reverse((0u64, 0u32, source)));
    while let Some(Reverse((d, h, u))) = heap.pop() {
        if done[u as usize] || (d, h) != best[u as usize] {
            continue;
        }
        done[u as usize] = true;
        for (v, w) in g.edges(u) {
            let cand = (d + w as Dist, h + 1);
            if !done[v as usize] && cand < best[v as usize] {
                best[v as usize] = cand;
                heap.push(Reverse((cand.0, cand.1, v)));
            }
        }
    }
    best
}

/// Exact k-radius `r̄_k(u)` (Definition 2): the closest distance to `u`
/// among vertices more than `k` hops away; `INF` if none exists.
pub fn k_radius(g: &CsrGraph, u: VertexId, k: u32) -> Dist {
    dist_hops(g, u)
        .iter()
        .filter(|&&(d, h)| d != INF && h > k)
        .map(|&(d, _)| d)
        .min()
        .unwrap_or(INF)
}

/// Exact enclosed-ball size `|B(u, r)| = |{v : d(u,v) ≤ r}|`.
pub fn ball_size(g: &CsrGraph, u: VertexId, r: Dist) -> usize {
    dist_hops(g, u).iter().filter(|&&(d, _)| d <= r).count()
}

/// Verifies the two preconditions of Lemma 4.1 for a radius assignment:
/// `r(v) ≤ r̄_k(v)` (bounds substeps) and `|B(v, r(v))| ≥ ρ` (bounds
/// steps). Returns the first violating vertex, if any. `O(n · m log n)` —
/// test-scale graphs only.
pub fn check_k_rho_graph(
    g: &CsrGraph,
    radii: &[Dist],
    k: u32,
    rho: usize,
) -> Result<(), (VertexId, String)> {
    for v in 0..g.num_vertices() as VertexId {
        let r = radii[v as usize];
        let rk = k_radius(g, v, k);
        if r > rk {
            return Err((v, format!("r({v}) = {r} exceeds k-radius {rk}")));
        }
        let b = ball_size(g, v, r);
        if b < rho {
            return Err((v, format!("|B({v}, {r})| = {b} < rho = {rho}")));
        }
    }
    Ok(())
}

/// `⌈log₂ x⌉` for `x ≥ 1`.
pub fn ceil_log2(x: u64) -> u32 {
    assert!(x >= 1);
    64 - (x - 1).leading_zeros().min(64)
}

/// Theorem 3.3's step bound: `⌈n/ρ⌉ (1 + ⌈log₂ ρL⌉)`.
pub fn step_bound(n: usize, rho: usize, max_weight: u64) -> usize {
    n.div_ceil(rho) * (1 + ceil_log2((rho as u64).saturating_mul(max_weight)) as usize)
}

/// Theorem 3.2's substep bound: `k + 2`.
pub fn substep_bound(k: u32) -> usize {
    k as usize + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::{gen, weights, EdgeListBuilder, WeightModel};

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 40), 40);
    }

    #[test]
    fn step_bound_formula() {
        // n=100, rho=10, L=1: ceil(100/10) * (1 + ceil(log2 10)) = 10 * 5.
        assert_eq!(step_bound(100, 10, 1), 50);
        assert_eq!(step_bound(101, 10, 1), 55);
        assert_eq!(substep_bound(1), 3);
    }

    #[test]
    fn dist_hops_prefers_fewer_hops_among_shortest() {
        // 0-3 direct weight 2; 0-1-3 and 0-2-3 weight 1+1.
        let mut b = EdgeListBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(0, 3, 2);
        let g = b.build();
        let dh = dist_hops(&g, 0);
        assert_eq!(dh[3], (2, 1), "1-hop shortest path wins");
        assert_eq!(dh[1], (1, 1));
    }

    #[test]
    fn k_radius_on_unit_path() {
        let g = gen::path(10);
        // From vertex 0, vertices at hops 1..9 and distance == hops.
        assert_eq!(k_radius(&g, 0, 1), 2);
        assert_eq!(k_radius(&g, 0, 3), 4);
        assert_eq!(k_radius(&g, 0, 9), INF, "nothing beyond 9 hops");
        // Middle vertex sees both directions.
        assert_eq!(k_radius(&g, 5, 2), 3);
    }

    #[test]
    fn ball_sizes_on_grid() {
        let g = gen::grid2d(5, 5);
        // Manhattan ball around the center: r=1 -> 5 vertices, r=2 -> 13.
        assert_eq!(ball_size(&g, 12, 0), 1);
        assert_eq!(ball_size(&g, 12, 1), 5);
        assert_eq!(ball_size(&g, 12, 2), 13);
    }

    #[test]
    fn preprocessing_satisfies_lemma_4_1() {
        // The end-to-end guarantee: after Preprocessed::build, the radii
        // and augmented graph form a (k, ρ)-graph in the exact sense.
        use crate::preprocess::{PreprocessConfig, Preprocessed, ShortcutHeuristic};
        let g = weights::reweight(&gen::grid2d(7, 7), WeightModel::paper_weighted(), 5);
        for (k, rho, h) in [
            (1u32, 6usize, ShortcutHeuristic::Full),
            (2, 10, ShortcutHeuristic::Greedy),
            (3, 12, ShortcutHeuristic::Dp),
        ] {
            let pre = Preprocessed::build(&g, &PreprocessConfig { k, rho, heuristic: h });
            check_k_rho_graph(&pre.graph, &pre.radii, k, rho)
                .unwrap_or_else(|(v, msg)| panic!("{h:?}: {msg} (vertex {v})"));
        }
    }
}
