//! Execution statistics: the quantities §5 measures.
//!
//! The paper's experiments count *steps* (outer while-loop iterations,
//! Figures 4–5 and Tables 4–7) and rely on the *substep* bound of
//! Theorem 3.2 (`k + 2` per step). Both are first-class outputs here, along
//! with relaxation counts (a work proxy) and an optional per-step trace.

use rayon::prelude::*;

use rs_graph::{CsrGraph, Dist, VertexId, INF};

/// Result of one single-source shortest-path computation — the uniform
/// output type every solver in the workspace returns (radius-stepping
/// engines, preprocessed pipelines, and all four baselines through the
/// [`crate::solver::SsspSolver`] trait).
#[derive(Debug, Clone)]
pub struct SsspResult {
    /// `dist[v]` = shortest-path distance from the source ([`rs_graph::INF`]
    /// if unreachable).
    pub dist: Vec<Dist>,
    /// Shortest-path tree, when requested (via `Query::with_paths` or
    /// `SolverBuilder::record_parents`): `parent[v]` is a predecessor of
    /// `v` consistent with `dist` (`parent[source] = source`, `u32::MAX`
    /// if unreachable), so every extracted path telescopes to `dist` of
    /// its endpoint. After a goal-bounded solve the settled vertices —
    /// in particular the whole goal path — are guaranteed covered;
    /// unsettled vertices are either parentless (the parallel engines
    /// clear them) or carry a predecessor telescoping to their tentative
    /// upper bound (sequential Dijkstra, derived trees).
    pub parent: Option<Vec<VertexId>>,
    /// Execution counters.
    pub stats: StepStats,
}

impl SsspResult {
    /// Wraps a distance array and counters (no parent tree).
    pub fn new(dist: Vec<Dist>, stats: StepStats) -> SsspResult {
        SsspResult { dist, parent: None, stats }
    }

    /// Derives and attaches the shortest-path tree from the distance array
    /// (parallel over vertices; works for every algorithm because any
    /// in-neighbor `u` with `dist[u] + w(u,v) = dist[v]` is a valid
    /// predecessor on these symmetric graphs).
    pub fn with_parents(mut self, g: &CsrGraph) -> SsspResult {
        self.parent = Some(derive_parents(g, &self.dist));
        self
    }

    /// Reconstructs the shortest path `source → t` from the recorded
    /// parent array. Returns `None` when no parents were recorded, `t` is
    /// unreachable, or `t` was not settled by a goal-bounded solve.
    pub fn extract_path(&self, t: VertexId) -> Option<Vec<VertexId>> {
        extract_path(self.parent.as_deref()?, t)
    }

    /// Reconstructs a shortest path to `t` by walking the distance array
    /// backwards (`dist[u] + w(u,t) == dist[t]` picks a valid predecessor),
    /// so no parent pointers need to be stored during the solve. Returns
    /// `None` if `t` is unreachable.
    pub fn path_to(&self, g: &CsrGraph, t: VertexId) -> Option<Vec<VertexId>> {
        shortest_path_from_dist(g, &self.dist, t)
    }
}

/// `parent[v]` = a predecessor of `v` on a shortest path consistent with
/// `dist` (`parent[v] = v` where `dist[v] = 0`; `u32::MAX` where `v` is
/// unreachable or `dist[v]` is a tentative value no in-neighbor certifies).
pub fn derive_parents(g: &CsrGraph, dist: &[Dist]) -> Vec<VertexId> {
    (0..g.num_vertices() as VertexId)
        .into_par_iter()
        .map(|v| {
            let dv = dist[v as usize];
            if dv == INF {
                return u32::MAX;
            }
            if dv == 0 {
                return v;
            }
            g.edges(v)
                .find(|&(u, w)| dist[u as usize].saturating_add(w as Dist) == dv)
                .map_or(u32::MAX, |(u, _)| u)
        })
        .collect()
}

/// Reconstructs the path `source → t` from a parent array, or `None` if
/// `t` is unreachable (`parent[t] = u32::MAX`) or the chain is broken
/// (goal-bounded solves may leave unsettled vertices parentless). The
/// returned path telescopes to `dist[t]` — exact for settled `t`, the
/// tentative upper bound otherwise (see [`SsspResult::parent`]).
pub fn extract_path(parent: &[VertexId], t: VertexId) -> Option<Vec<VertexId>> {
    if parent.get(t as usize).is_none_or(|&p| p == u32::MAX) {
        return None;
    }
    let mut path = vec![t];
    let mut cur = t;
    while parent[cur as usize] != cur {
        cur = parent[cur as usize];
        if cur == u32::MAX {
            return None;
        }
        path.push(cur);
        debug_assert!(path.len() <= parent.len(), "parent cycle");
    }
    path.reverse();
    Some(path)
}

/// Sparse parent array covering exactly the shortest `source → goal` path:
/// the chain is derived by walking the distance array backwards from
/// `goal` (`dist[u] + w(u, goal) == dist[goal]` certifies a predecessor —
/// every vertex on a shortest path to an exactly-settled goal is itself
/// exact, so the walk always closes), and every off-path vertex stays
/// `u32::MAX`. Costs `O(n)` for the array plus `O(path length · degree)`
/// for the walk — no all-edges post-pass — which is what the goal-bounded
/// `want_paths` serving path needs from the solvers whose parallel
/// relaxation has no per-writer claim log (∆-stepping, Bellman–Ford, BFS,
/// the unweighted engine).
pub fn goal_path_parents(g: &CsrGraph, dist: &[Dist], goal: VertexId) -> Vec<VertexId> {
    goals_path_parents(g, dist, std::slice::from_ref(&goal))
}

/// Multi-goal form of [`goal_path_parents`]: one sparse parent array
/// covering every `source → goal` path for the one-to-many serving shape.
/// The backwards walk is deterministic per vertex (first certifying
/// predecessor in adjacency order), so overlapping walks write identical
/// entries and each extracted goal path is bit-identical to the one a
/// single-goal walk over the same distance array would produce.
/// Unreachable goals are skipped (their entries stay `u32::MAX`). Costs
/// `O(n)` for the array plus `O(Σ path length · degree)` for the walks.
pub fn goals_path_parents(g: &CsrGraph, dist: &[Dist], goals: &[VertexId]) -> Vec<VertexId> {
    let mut parent = vec![u32::MAX; g.num_vertices()];
    for &goal in goals {
        let Some(path) = shortest_path_from_dist(g, dist, goal) else {
            continue;
        };
        parent[path[0] as usize] = path[0];
        for w in path.windows(2) {
            parent[w[1] as usize] = w[0];
        }
    }
    parent
}

/// See [`SsspResult::path_to`].
pub fn shortest_path_from_dist(g: &CsrGraph, dist: &[Dist], t: VertexId) -> Option<Vec<VertexId>> {
    if dist[t as usize] == INF {
        return None;
    }
    let mut path = vec![t];
    let mut cur = t;
    while dist[cur as usize] != 0 {
        let d = dist[cur as usize];
        let pred = g
            .edges(cur)
            .find(|&(u, w)| dist[u as usize].saturating_add(w as Dist) == d)
            .map(|(u, _)| u)
            .expect("distance array inconsistent: no predecessor on a shortest path");
        path.push(pred);
        cur = pred;
        assert!(path.len() <= dist.len(), "predecessor cycle: distances not from this graph");
    }
    path.reverse();
    Some(path)
}

/// Step/substep/work counters for one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Outer-loop steps (the paper's "number of steps"/"rounds").
    pub steps: usize,
    /// Total Bellman–Ford substeps across all steps.
    pub substeps: usize,
    /// Largest number of substeps in any single step (Theorem 3.2 bounds
    /// this by `k + 2` on a (k, ρ)-graph).
    pub max_substeps_in_step: usize,
    /// Edge relaxations attempted (a sequential-work proxy).
    pub relaxations: u64,
    /// Edges actually scanned during relaxation. Equal to `relaxations`
    /// for forward solves; the goal-bounded kernels (bidirectional,
    /// ALT-pruned) report the smaller number of edges they touched, which
    /// is the quantity the point-to-point speedups are measured by.
    pub relaxed_edges: u64,
    /// Vertices settled (equals reachable vertices on termination).
    pub settled: usize,
    /// True iff this solve ran entirely on pre-allocated
    /// [`crate::SolverScratch`] state (no working-array allocation) — the
    /// per-result face of the batch path's warm-scratch guarantee. Always
    /// `false` for plain `solve()` calls, which build a fresh scratch.
    pub scratch_reused: bool,
    /// Per-step trace, when requested via
    /// [`crate::EngineConfig::with_trace`].
    pub trace: Option<Vec<StepTrace>>,
}

/// One step's record in the optional trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepTrace {
    /// The round distance `d_i`.
    pub d_i: Dist,
    /// Vertices settled by this step (`|S_i \ S_{i-1}|`).
    pub settled: usize,
    /// Substeps this step used.
    pub substeps: usize,
    /// Size of the active set when the step closed.
    pub active_size: usize,
}

impl StepStats {
    /// Folds one step's outcome into the totals.
    pub fn record_step(&mut self, trace: Option<StepTrace>) {
        self.steps += 1;
        if let Some(t) = trace {
            self.substeps += t.substeps;
            self.max_substeps_in_step = self.max_substeps_in_step.max(t.substeps);
            self.settled += t.settled;
            if let Some(v) = self.trace.as_mut() {
                v.push(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_reconstruction() {
        use crate::{radius_stepping, RadiiSpec};
        use rs_graph::EdgeListBuilder;
        let mut b = EdgeListBuilder::new(5);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 2);
        b.add_edge(0, 2, 5);
        b.add_edge(3, 4, 1); // separate component
        let g = b.build();
        let out = radius_stepping(&g, &RadiiSpec::Zero, 0);
        assert_eq!(out.path_to(&g, 2), Some(vec![0, 1, 2]), "goes via the cheaper 2-hop route");
        assert_eq!(out.path_to(&g, 0), Some(vec![0]));
        assert_eq!(out.path_to(&g, 4), None, "unreachable");
    }

    #[test]
    fn record_accumulates() {
        let mut s = StepStats { trace: Some(Vec::new()), ..Default::default() };
        s.record_step(Some(StepTrace { d_i: 5, settled: 3, substeps: 2, active_size: 3 }));
        s.record_step(Some(StepTrace { d_i: 9, settled: 1, substeps: 4, active_size: 2 }));
        assert_eq!(s.steps, 2);
        assert_eq!(s.substeps, 6);
        assert_eq!(s.max_substeps_in_step, 4);
        assert_eq!(s.settled, 4);
        assert_eq!(s.trace.as_ref().unwrap().len(), 2);
    }
}
