//! Radius-Stepping: parallel single-source shortest paths.
//!
//! Implementation of *"Parallel Shortest-Paths Using Radius Stepping"*
//! (Blelloch, Gu, Sun, Tangwongsan; SPAA 2016). The algorithm is a
//! ∆-stepping-like hybrid of Dijkstra and Bellman–Ford that, instead of a
//! fixed step width, picks each round distance as
//! `d_i = min_{v ∉ S} (δ(v) + r(v))` from per-vertex radii `r(·)`
//! (Algorithm 1). With radii from the (k, ρ)-graph preprocessing of §4 it
//! runs in `O(m log n)` work and `O((n/ρ) log n log ρL)` depth per source.
//!
//! Two entry points:
//!
//! * [`radius_stepping`] — run Algorithm 1 on any graph with any
//!   [`RadiiSpec`] (correct for *all* radii; the radii only steer the
//!   step/substep trade-off: `Zero` ≈ Dijkstra, `Infinite` ≈ Bellman–Ford,
//!   `Constant(∆)` ≈ ∆-stepping).
//! * [`preprocess::Preprocessed`] — the full pipeline: build a
//!   (k, ρ)-graph with shortcut edges and `r(v) = r_ρ(v)` radii (§4), then
//!   solve from any number of sources with bounded steps and substeps
//!   (Theorems 3.2 and 3.3).
//!
//! ```
//! use rs_graph::{gen, weights, WeightModel};
//! use rs_core::preprocess::{Preprocessed, PreprocessConfig};
//!
//! let g = weights::reweight(&gen::grid2d(20, 20), WeightModel::paper_weighted(), 1);
//! let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 16));
//! let out = pre.sssp(0);
//! assert_eq!(out.dist[0], 0);
//! assert!(out.stats.max_substeps_in_step <= 1 + 2); // Theorem 3.2, k = 1
//! ```

pub mod engine;
pub mod landmarks;
pub mod preprocess;
pub mod radii;
pub mod scratch;
pub mod solver;
pub mod stats;
pub mod verify;

pub use engine::{
    radius_stepping, radius_stepping_with, radius_stepping_with_scratch, EngineConfig, EngineKind,
    Goals,
};
pub use landmarks::{Landmarks, DEFAULT_LANDMARKS};
pub use preprocess::{PreprocessConfig, Preprocessed, ShortcutExpander};
pub use radii::RadiiSpec;
pub use scratch::{global_scratch_pool, PooledScratch, ScratchPool, SolverScratch};
pub use solver::{
    execute_many_to_many, execute_many_to_many_pooled, Algorithm, BatchOutcome, BatchStats,
    HeapKind, P2pMode, Query, QueryBatch, QueryResponse, QueryShape, Radii, SolverBuilder,
    SolverConfig, SsspSolver,
};
pub use stats::{
    derive_parents, extract_path, goal_path_parents, goals_path_parents, SsspResult, StepStats,
    StepTrace,
};
