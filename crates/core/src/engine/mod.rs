//! Radius-stepping execution engines.
//!
//! Two interchangeable engines compute identical step sequences:
//!
//! * [`frontier`] — the production engine: Algorithm 1 with a packed
//!   fringe, parallel min-reduction for `d_i`, and parallel priority-write
//!   Bellman–Ford substeps.
//! * [`bst`] — the faithful Algorithm 2: the fringe lives in two join-based
//!   treaps `Q` (by `δ(u)`) and `R` (by `δ(u) + r(u)`), driven by
//!   extract-min / split / union / difference exactly as §3.3 prescribes.
//!
//! Their step counts, round distances and results are asserted equal in the
//! cross-engine tests; the `engines` bench measures the constant-factor gap.

pub mod bst;
pub mod frontier;
pub mod p2p;
pub mod unweighted;

use rs_graph::{CsrGraph, VertexId};

use crate::radii::RadiiSpec;
use crate::scratch::SolverScratch;
use crate::stats::SsspResult;

/// Engine selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Parallel frontier engine (Algorithm 1); the default.
    #[default]
    Frontier,
    /// Treap-based engine (Algorithm 2 with BSTs `Q` and `R`).
    Bst,
    /// BFS-style engine for unit-weight graphs (§3.4); no ordered
    /// structures at all. Panics on weighted inputs.
    Unweighted,
}

/// Goal bound of one solve: which vertices must be settled before the
/// engine (or baseline) may exit early. `None` means run to completion;
/// `One` is the point-to-point serving shape; `Many` is the one-to-many
/// fan-out shape (one solve, every listed goal settled exactly). A `Many`
/// slice must arrive sorted and deduplicated — the query plane
/// canonicalises (see `Query::canonical_goals`), and solvers may rely on
/// the order for O(log k) membership checks. An empty slice is trivially
/// satisfied, so the solve stops after settling the source.
#[derive(Debug, Clone, Copy, Default)]
pub enum Goals<'a> {
    /// Unbounded: exact distances everywhere.
    #[default]
    None,
    /// Stop once this vertex is settled.
    One(VertexId),
    /// Stop once every listed vertex is settled.
    Many(&'a [VertexId]),
}

impl<'a> Goals<'a> {
    /// Lifts the legacy single-goal `Option` into a goal bound.
    pub fn from_option(goal: Option<VertexId>) -> Goals<'static> {
        match goal {
            None => Goals::None,
            Some(g) => Goals::One(g),
        }
    }

    /// True when the solve may exit before settling every vertex.
    pub fn bounded(&self) -> bool {
        !matches!(self, Goals::None)
    }

    /// The goal vertices (empty for [`Goals::None`]).
    pub fn as_slice(&self) -> &[VertexId] {
        match self {
            Goals::None => &[],
            Goals::One(g) => std::slice::from_ref(g),
            Goals::Many(gs) => gs,
        }
    }

    /// The early-exit predicate: true iff this bound is active and `f`
    /// holds for every goal ("is it settled?"). Always false for
    /// [`Goals::None`] — an unbounded solve never exits early.
    pub fn all_done(&self, mut f: impl FnMut(VertexId) -> bool) -> bool {
        self.bounded() && self.as_slice().iter().all(|&g| f(g))
    }
}

/// Engine options.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig<'a> {
    /// Record a per-step trace in the result (costs one record per step).
    pub trace: bool,
    /// Stop as soon as every goal in the bound is settled (their distances
    /// are then exact; other vertices may hold tentative upper bounds or
    /// `INF`).
    pub goals: Goals<'a>,
    /// Record the shortest-path tree *inline*: the frontier and BST
    /// engines log one parent claim per successful relaxation (O(1) each)
    /// and resolve claims at substep end; the unweighted engine derives the
    /// goal paths by backwards level walks. Settled vertices get
    /// telescoping parents; unsettled ones (goal-bounded early exit) stay
    /// `u32::MAX`. This replaces the all-edges `derive_parents` post-pass
    /// on the goal-bounded serving path.
    pub record_parents: bool,
}

impl<'a> EngineConfig<'a> {
    /// Config with tracing enabled.
    pub fn with_trace() -> EngineConfig<'static> {
        EngineConfig { trace: true, ..Default::default() }
    }

    /// Config stopping once `goal` is settled.
    pub fn with_goal(goal: VertexId) -> EngineConfig<'static> {
        EngineConfig { goals: Goals::One(goal), ..Default::default() }
    }

    /// Sets a single early-termination goal.
    pub fn goal(mut self, goal: VertexId) -> Self {
        self.goals = Goals::One(goal);
        self
    }

    /// Sets the goal bound (single, many, or none).
    pub fn goals(mut self, goals: Goals<'a>) -> Self {
        self.goals = goals;
        self
    }

    /// Enables inline parent recording.
    pub fn record_parents(mut self, on: bool) -> Self {
        self.record_parents = on;
        self
    }
}

/// Solves SSSP from `source` with the default (frontier) engine.
///
/// Correct for any `radii` (Theorem 3.1 holds regardless); the radii govern
/// only how many steps and substeps the run takes.
pub fn radius_stepping(g: &CsrGraph, radii: &RadiiSpec, source: VertexId) -> SsspResult {
    radius_stepping_with(g, radii, source, EngineKind::Frontier, EngineConfig::default())
}

/// Solves SSSP with an explicit engine and configuration.
pub fn radius_stepping_with(
    g: &CsrGraph,
    radii: &RadiiSpec,
    source: VertexId,
    kind: EngineKind,
    config: EngineConfig<'_>,
) -> SsspResult {
    assert!((source as usize) < g.num_vertices(), "source out of range");
    match kind {
        EngineKind::Frontier => frontier::run(g, radii, source, config),
        EngineKind::Bst => bst::run(g, radii, source, config),
        EngineKind::Unweighted => unweighted::run(g, radii, source, config),
    }
}

/// [`radius_stepping_with`] on reusable scratch state: identical results
/// (bit-for-bit, asserted by the conformance suite), but the working
/// arrays come from `scratch` — the batch-serving entry point behind
/// [`crate::solver::SsspSolver::solve_with_scratch`].
pub fn radius_stepping_with_scratch(
    g: &CsrGraph,
    radii: &RadiiSpec,
    source: VertexId,
    kind: EngineKind,
    config: EngineConfig<'_>,
    scratch: &mut SolverScratch,
) -> SsspResult {
    assert!((source as usize) < g.num_vertices(), "source out of range");
    match kind {
        EngineKind::Frontier => frontier::run_with(g, radii, source, config, scratch),
        EngineKind::Bst => bst::run_with(g, radii, source, config, scratch),
        EngineKind::Unweighted => unweighted::run_with(g, radii, source, config, scratch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::{gen, weights, WeightModel, INF};

    #[test]
    fn dispatch_runs_both_engines() {
        let g = weights::reweight(&gen::cycle(8), WeightModel::paper_weighted(), 1);
        let a = radius_stepping_with(
            &g,
            &RadiiSpec::Zero,
            0,
            EngineKind::Frontier,
            EngineConfig::default(),
        );
        let b =
            radius_stepping_with(&g, &RadiiSpec::Zero, 0, EngineKind::Bst, EngineConfig::default());
        assert_eq!(a.dist, b.dist);
        assert!(a.dist.iter().all(|&d| d != INF));
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn source_bounds_checked() {
        let g = gen::path(3);
        radius_stepping(&g, &RadiiSpec::Zero, 99);
    }
}
