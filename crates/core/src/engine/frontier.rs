//! The parallel frontier engine: Algorithm 1 as a production solver.
//!
//! Per step `i`:
//!
//! 1. `d_i ← min_{v ∈ fringe} (δ(v) + r(v))` — a parallel min-reduction
//!    over the packed fringe (unsettled vertices with finite `δ`); vertices
//!    with `δ = ∞` contribute `∞` and are simply not in the fringe.
//! 2. The active set `A_i = {v ∈ fringe : δ(v) ≤ d_i}` runs Bellman–Ford
//!    substeps: every changed vertex relaxes its out-edges with an atomic
//!    priority-write. Vertices pulled to `δ ≤ d_i` join `A_i`; vertices
//!    newly reached above `d_i` join the fringe. The loop exits after the
//!    first substep producing no update `≤ d_i` (the paper's termination
//!    condition, line 9), so the final "checking" substep is counted —
//!    Theorem 3.2's bound of `k + 2` includes it.
//! 3. `A_i` is settled and removed from the fringe.
//!
//! Relaxations of settled vertices can never succeed (their `δ` is final
//! and any candidate is `≥` it), so settled targets are skipped purely as
//! an optimisation; likewise re-relaxing an unchanged vertex can produce no
//! new updates, which is why change-driven substeps count identically to
//! the literal "all of `A_i` every substep" of Algorithm 1.

use rayon::prelude::*;

use rs_graph::{CsrGraph, Dist, VertexId};
use rs_par::{par_min, AtomicBitset, EpochMinArray};

use crate::radii::RadiiSpec;
use crate::scratch::{ParentClaim, SolverScratch};
use crate::stats::{SsspResult, StepStats, StepTrace};
use crate::EngineConfig;

/// Sequential cutover: below this many dirty vertices a substep relaxes
/// sequentially (fork-join overhead dominates tiny frontiers).
const SEQ_SUBSTEP: usize = 2048;

pub(crate) fn run(
    g: &CsrGraph,
    radii: &RadiiSpec,
    source: VertexId,
    config: EngineConfig<'_>,
) -> SsspResult {
    run_with(g, radii, source, config, &mut SolverScratch::new())
}

pub(crate) fn run_with(
    g: &CsrGraph,
    radii: &RadiiSpec,
    source: VertexId,
    config: EngineConfig<'_>,
    scratch: &mut SolverScratch,
) -> SsspResult {
    let n = g.num_vertices();
    crate::scratch::assert_distance_range(g);
    scratch.begin(n);
    let mut stats = StepStats { trace: config.trace.then(Vec::new), ..Default::default() };
    // The parent tree is part of the *result* (owned by the caller like
    // `dist`), not working state: claims are resolved into it at substep
    // end, so a settled vertex's parent always matches the winning writer.
    let mut parent: Option<Vec<VertexId>> = config.record_parents.then(|| vec![u32::MAX; n]);
    let out_dist;
    {
        let view = scratch.view();
        let dist = view.dist;
        let settled = view.settled;
        let in_fringe = view.mark_a;
        let in_active = view.mark_b;
        let dirty_mark = view.mark_c;
        let fringe = view.verts_a;
        let active = view.verts_b;
        let dirty = view.verts_c;
        let next_dirty = view.verts_d;
        let fringe_adds = view.verts_e;
        let snapshot = view.pairs;
        let claims = view.claims;
        let record = parent.is_some();

        // Line 1–2: settle the source, relax its neighbours into the fringe.
        dist.store(source as usize, 0);
        settled.set(source as usize);
        stats.settled = 1;
        if let Some(p) = parent.as_deref_mut() {
            p[source as usize] = source;
        }
        for (v, w) in g.edges(source) {
            if dist.write_min(v as usize, w as Dist) {
                if let Some(p) = parent.as_deref_mut() {
                    p[v as usize] = source;
                }
            }
            if in_fringe.set(v as usize) {
                fringe.push(v);
            }
        }
        stats.relaxations += g.degree(source) as u64;

        let mut prev_di: Dist = 0;
        while !fringe.is_empty() {
            // Early exit for goal-bounded solves: once every goal is
            // settled their distances are final (Theorem 3.1's invariant).
            if config.goals.all_done(|g| settled.get(g as usize)) {
                break;
            }
            // Line 4: d_i = min over the fringe of δ(v) + r(v).
            let di = par_min(fringe.len(), |i| {
                let v = fringe[i];
                radii.key(v, dist.load(v as usize))
            });
            debug_assert!(
                stats.steps == 0 || di > prev_di,
                "round distances must strictly increase"
            );
            prev_di = di;

            // Active set: fringe vertices with δ ≤ d_i (non-empty: the
            // argmin vertex has δ ≤ δ + r = d_i).
            active.clear();
            active.extend(fringe.iter().copied().filter(|&v| dist.load(v as usize) <= di));
            for &v in active.iter() {
                in_active.set(v as usize);
            }

            // Lines 5–9: Bellman–Ford substeps over the annulus. Each
            // substep relaxes from a snapshot of its sources' distances
            // (synchronous / Jacobi semantics), so the substep count
            // matches the paper's definition and is independent of
            // scheduling. All per-substep sets live in scratch buffers —
            // no allocation inside the loop on a warm scratch (the
            // parallel path's fold/reduce temporaries are the one
            // rayon-owned exception).
            dirty.clear();
            dirty.extend_from_slice(active);
            fringe_adds.clear();
            let mut substeps = 0;
            loop {
                substeps += 1;
                stats.relaxations += dirty.iter().map(|&u| g.degree(u) as u64).sum::<u64>();
                snapshot.clear();
                snapshot.extend(dirty.iter().map(|&u| (u, dist.load(u as usize))));
                next_dirty.clear();
                claims.clear();
                let any_le = relax_substep(
                    g,
                    dist,
                    settled,
                    in_fringe,
                    dirty_mark,
                    snapshot,
                    di,
                    next_dirty,
                    fringe_adds,
                    claims,
                    record,
                );
                if let Some(p) = parent.as_deref_mut() {
                    crate::scratch::resolve_parent_claims(p, dist, claims);
                }
                for &v in next_dirty.iter() {
                    dirty_mark.clear(v as usize);
                    if in_active.set(v as usize) {
                        active.push(v);
                    }
                }
                std::mem::swap(dirty, next_dirty);
                if !any_le {
                    break;
                }
            }

            // Line 10: S_i ← S_{i-1} ∪ A_i.
            for &v in active.iter() {
                settled.set(v as usize);
                in_active.clear(v as usize);
                debug_assert!(dist.load(v as usize) <= di);
            }

            // Maintain the fringe: drop settled, add newly reached.
            fringe.retain(|&v| !settled.get(v as usize));
            fringe.extend(fringe_adds.iter().copied().filter(|&v| !settled.get(v as usize)));

            stats.record_step(Some(StepTrace {
                d_i: di,
                settled: active.len(),
                substeps,
                active_size: active.len(),
            }));
        }

        out_dist = dist.snapshot(n);
        if config.goals.bounded() {
            if let Some(p) = parent.as_deref_mut() {
                crate::scratch::clear_unsettled_parents(p, settled);
            }
        }
    }
    stats.scratch_reused = scratch.finish();
    // Forward solves scan every edge they relax.
    stats.relaxed_edges = stats.relaxations;
    let mut result = SsspResult::new(out_dist, stats);
    result.parent = parent;
    result
}

/// One substep: relax all out-edges of `dirty` (given as `(vertex, δ)`
/// pairs snapshotted at substep start). Vertices whose δ dropped to ≤ `di`
/// land in `next_dirty`, vertices newly reached above `di` are appended to
/// `fringe_adds`, successful relaxations are appended to `claims` when
/// `record` is set (one O(1) entry each — the inline-parent log), and the
/// return value reports whether any update ≤ `di` happened (the
/// loop-termination signal of line 9). The sequential path (< `SEQ_SUBSTEP`
/// dirty vertices) writes straight into the caller's scratch buffers; the
/// parallel path folds per-worker accumulators and appends them.
#[allow(clippy::too_many_arguments)]
fn relax_substep(
    g: &CsrGraph,
    dist: &EpochMinArray,
    settled: &AtomicBitset,
    in_fringe: &AtomicBitset,
    dirty_mark: &AtomicBitset,
    dirty: &[(VertexId, Dist)],
    di: Dist,
    next_dirty: &mut Vec<VertexId>,
    fringe_adds: &mut Vec<VertexId>,
    claims: &mut Vec<ParentClaim>,
    record: bool,
) -> bool {
    #[derive(Default)]
    struct Acc {
        dirty: Vec<VertexId>,
        adds: Vec<VertexId>,
        claims: Vec<ParentClaim>,
        any_le: bool,
    }

    let relax_one = |dirty_out: &mut Vec<VertexId>,
                     adds_out: &mut Vec<VertexId>,
                     claims_out: &mut Vec<ParentClaim>,
                     any_le: &mut bool,
                     (u, du): (VertexId, Dist)| {
        for (v, w) in g.edges(u) {
            if settled.get(v as usize) {
                continue;
            }
            let cand = du + w as Dist;
            if dist.write_min(v as usize, cand) {
                if record {
                    claims_out.push((v, cand, u));
                }
                if cand <= di {
                    *any_le = true;
                    if dirty_mark.set(v as usize) {
                        dirty_out.push(v);
                    }
                } else if in_fringe.set(v as usize) {
                    adds_out.push(v);
                }
            }
        }
    };

    if dirty.len() < SEQ_SUBSTEP {
        let mut any_le = false;
        for &pair in dirty {
            relax_one(next_dirty, fringe_adds, claims, &mut any_le, pair);
        }
        any_le
    } else {
        let mut acc = dirty
            .par_iter()
            .fold(Acc::default, |mut acc, &pair| {
                relax_one(&mut acc.dirty, &mut acc.adds, &mut acc.claims, &mut acc.any_le, pair);
                acc
            })
            .reduce(Acc::default, |mut a, mut b| {
                a.dirty.append(&mut b.dirty);
                a.adds.append(&mut b.adds);
                a.claims.append(&mut b.claims);
                a.any_le |= b.any_le;
                a
            });
        next_dirty.append(&mut acc.dirty);
        fringe_adds.append(&mut acc.adds);
        claims.append(&mut acc.claims);
        acc.any_le
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_graph::{gen, weights, EdgeListBuilder, WeightModel, INF};

    fn solve(g: &CsrGraph, radii: &RadiiSpec, s: VertexId) -> SsspResult {
        run(g, radii, s, EngineConfig::with_trace())
    }

    #[test]
    fn scratch_reuse_is_bit_identical_and_warm() {
        let g = weights::reweight(&gen::grid2d(9, 9), WeightModel::paper_weighted(), 3);
        let mut scratch = SolverScratch::new();
        // Interleave sources on one scratch; every run must equal a fresh
        // solve, and every run after the first must be allocation-free.
        for (i, s) in [0u32, 80, 40, 0, 13].into_iter().enumerate() {
            let warm = run_with(
                &g,
                &RadiiSpec::Constant(700),
                s,
                EngineConfig::with_trace(),
                &mut scratch,
            );
            let cold = solve(&g, &RadiiSpec::Constant(700), s);
            assert_eq!(warm.dist, cold.dist, "source {s}");
            assert_eq!(warm.stats.steps, cold.stats.steps);
            assert_eq!(warm.stats.substeps, cold.stats.substeps);
            assert_eq!(warm.stats.scratch_reused, i > 0, "solve {i}");
        }
        assert_eq!(scratch.solves(), 5);
        assert_eq!(scratch.reuses(), 4);
    }

    #[test]
    fn inline_parents_telescope_goal_bounded_and_full() {
        let g = weights::reweight(&gen::grid2d(12, 12), WeightModel::paper_weighted(), 9);
        let goal = 143u32;
        let bounded = run(
            &g,
            &RadiiSpec::Constant(900),
            0,
            EngineConfig::with_goal(goal).record_parents(true),
        );
        let parent = bounded.parent.as_ref().expect("inline parents recorded");
        let path = crate::stats::extract_path(parent, goal).expect("goal settled");
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), goal);
        let mut acc = 0u64;
        for w in path.windows(2) {
            acc += g.arc_weight(w[0], w[1]).expect("path edge") as u64;
        }
        assert_eq!(acc, bounded.dist[goal as usize], "inline parents must telescope");

        // Full solve with inline recording: every reachable vertex's
        // parent telescopes exactly.
        let full =
            run(&g, &RadiiSpec::Constant(900), 0, EngineConfig::default().record_parents(true));
        let parent = full.parent.as_ref().unwrap();
        assert_eq!(parent[0], 0);
        for v in 1..g.num_vertices() as u32 {
            let p = parent[v as usize];
            assert_ne!(p, u32::MAX, "vertex {v} settled but parentless");
            assert_eq!(
                full.dist[p as usize] + g.arc_weight(p, v).expect("tree edge") as u64,
                full.dist[v as usize],
                "parent of {v} does not telescope"
            );
        }
    }

    #[test]
    fn zero_radii_is_dijkstra_by_levels() {
        // r ≡ 0 settles exactly one distance value per step.
        let mut b = EdgeListBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 1);
        b.add_edge(1, 3, 2);
        let g = b.build();
        let out = solve(&g, &RadiiSpec::Zero, 0);
        assert_eq!(out.dist, vec![0, 1, 1, 3]);
        // Distinct nonzero distance values: {1, 3} -> 2 steps.
        assert_eq!(out.stats.steps, 2);
        // §3: with r ≡ 0 "the inner step is run only once" — every active
        // vertex has δ = d_i, so no relaxation can land ≤ d_i.
        assert_eq!(out.stats.max_substeps_in_step, 1);
    }

    #[test]
    fn infinite_radii_is_bellman_ford_single_step() {
        let g = gen::path(12);
        let out = solve(&g, &RadiiSpec::Infinite, 0);
        assert_eq!(out.stats.steps, 1);
        assert_eq!(out.dist[11], 11);
        // Vertex 1 starts relaxed; substeps walk the chain to vertex 11
        // (10 productive substeps), plus the final no-update check.
        assert_eq!(out.stats.substeps, 11);
    }

    #[test]
    fn unreachable_stay_inf() {
        let mut b = EdgeListBuilder::new(4);
        b.add_edge(0, 1, 3);
        let g = b.build();
        let out = solve(&g, &RadiiSpec::Constant(5), 0);
        assert_eq!(out.dist, vec![0, 3, INF, INF]);
        assert_eq!(out.stats.settled, 2);
    }

    #[test]
    fn trace_is_consistent() {
        let g = weights::reweight(&gen::grid2d(8, 8), WeightModel::paper_weighted(), 2);
        let out = solve(&g, &RadiiSpec::Constant(500), 0);
        let trace = out.stats.trace.as_ref().unwrap();
        assert_eq!(trace.len(), out.stats.steps);
        // d_i strictly increasing; settled counts sum to reachable count.
        assert!(trace.windows(2).all(|w| w[0].d_i < w[1].d_i));
        let settled: usize = trace.iter().map(|t| t.settled).sum();
        assert_eq!(settled + 1, 64); // +1 for the source
        assert_eq!(out.stats.settled, 64);
    }

    #[test]
    fn singleton_graph() {
        let g = CsrGraph::empty(1);
        let out = solve(&g, &RadiiSpec::Zero, 0);
        assert_eq!(out.dist, vec![0]);
        assert_eq!(out.stats.steps, 0);
    }

    #[test]
    fn star_settles_in_one_step_with_big_radius() {
        let g = gen::star(50);
        let out = solve(&g, &RadiiSpec::Constant(10), 0);
        assert_eq!(out.stats.steps, 1, "all leaves within d_1 = 1 + 10");
        assert!(out.dist[1..].iter().all(|&d| d == 1));
    }
}
