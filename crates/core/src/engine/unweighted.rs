//! The unweighted specialisation of §3.4 (Lemma 3.10).
//!
//! On unit-weight graphs every fringe vertex shares the same tentative
//! distance (the current BFS level ℓ), so no ordered structures are needed
//! at all: the round distance is `d_i = ℓ + min_{v ∈ frontier} r(v)` and a
//! step is a plain level-synchronous BFS expansion of levels `ℓ..=d_i`.
//! Each round costs `O(n')` work for `n'` frontier vertices and edges —
//! `O(m + n)` total — and the only non-BFS machinery is one parallel
//! min-reduction per step, giving the Lemma 3.10 bounds
//! (`O((n/ρ) log ρ log* ρ)` depth after (k,ρ) preprocessing).
//!
//! Produces identical distances, steps and substeps to the general
//! engines on unit-weight inputs (asserted in tests).

use rs_graph::{edge_map, CsrGraph, Dist, VertexId, INF};
use rs_par::{par_min, VertexSubset};

use crate::radii::RadiiSpec;
use crate::scratch::SolverScratch;
use crate::stats::{SsspResult, StepStats, StepTrace};
use crate::EngineConfig;

pub(crate) fn run(
    g: &CsrGraph,
    radii: &RadiiSpec,
    source: VertexId,
    config: EngineConfig<'_>,
) -> SsspResult {
    run_with(g, radii, source, config, &mut SolverScratch::new())
}

pub(crate) fn run_with(
    g: &CsrGraph,
    radii: &RadiiSpec,
    source: VertexId,
    config: EngineConfig<'_>,
    scratch: &mut SolverScratch,
) -> SsspResult {
    assert!(
        g.is_unit_weighted(),
        "the unweighted engine requires unit weights; use the frontier engine instead"
    );
    let n = g.num_vertices();
    scratch.begin(n);
    let mut stats = StepStats { trace: config.trace.then(Vec::new), ..Default::default() };
    // The level array doubles as the result (the output copy other engines
    // pay separately), so only the visited set and its clearing come from
    // the scratch here — the lean accessor, not the full view, keeps a
    // BFS-only scratch free of the unused distance structures.
    let mut dist = vec![INF; n];
    {
        let visited = scratch.visited_set();

        visited.set(source as usize);
        dist[source as usize] = 0;
        stats.settled = 1;

        // Frontier = the unsettled BFS level ℓ (all at distance ℓ).
        let mut frontier: Vec<VertexId> = g.neighbors(source).to_vec();
        for &v in &frontier {
            visited.set(v as usize);
        }
        stats.relaxations += g.degree(source) as u64;
        let mut level: Dist = 1;

        while !frontier.is_empty() {
            // Early exit for goal-bounded solves: a vertex's distance is
            // final as soon as it is assigned (levels settle in order).
            if config.goals.all_done(|g| dist[g as usize] != INF) {
                break;
            }
            // d_i = ℓ + min r(v) over the frontier (line 4 specialised).
            let di = par_min(frontier.len(), |i| radii.key(frontier[i], 0)).saturating_add(level);
            let mut substeps = 0;
            let mut settled_this_step = 0usize;

            // Expand levels ℓ..=d_i; each expansion is one substep.
            while level <= di && !frontier.is_empty() {
                substeps += 1;
                for &v in &frontier {
                    dist[v as usize] = level;
                }
                settled_this_step += frontier.len();
                stats.relaxations += frontier.iter().map(|&u| g.degree(u) as u64).sum::<u64>();
                let subset = VertexSubset::from_ids(n, std::mem::take(&mut frontier));
                frontier = edge_map(
                    g,
                    &subset,
                    |_, v, _| visited.set(v as usize),
                    |v| !visited.get(v as usize),
                )
                .to_ids();
                level += 1;
            }

            stats.record_step(Some(StepTrace {
                d_i: di,
                settled: settled_this_step,
                substeps,
                active_size: settled_this_step,
            }));
        }
    }
    stats.scratch_reused = scratch.finish();
    // Forward solves scan every edge they relax.
    stats.relaxed_edges = stats.relaxations;
    let mut result = SsspResult::new(dist, stats);
    if config.record_parents {
        // Levels carry no per-relaxation writer identity (edge_map claims
        // are anonymous), so "inline" here is the backwards level walk: a
        // goal-bounded solve derives exactly the goal paths (no all-edges
        // post-pass), a full solve falls back to the parallel derivation.
        result.parent = Some(if config.goals.bounded() {
            crate::stats::goals_path_parents(g, &result.dist, config.goals.as_slice())
        } else {
            crate::stats::derive_parents(g, &result.dist)
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::frontier;
    use crate::preprocess::compute_radii;
    use rs_graph::gen;

    fn assert_matches_general(g: &CsrGraph, radii: &RadiiSpec, s: VertexId) {
        let bfs_mode = run(g, radii, s, EngineConfig::with_trace());
        let general = frontier::run(g, radii, s, EngineConfig::with_trace());
        assert_eq!(bfs_mode.dist, general.dist, "distances differ");
        assert_eq!(bfs_mode.stats.steps, general.stats.steps, "steps differ");
        assert_eq!(bfs_mode.stats.substeps, general.stats.substeps, "substeps differ");
        let a: Vec<Dist> = bfs_mode.stats.trace.unwrap().iter().map(|t| t.d_i).collect();
        let b: Vec<Dist> = general.stats.trace.unwrap().iter().map(|t| t.d_i).collect();
        assert_eq!(a, b, "round distances differ");
    }

    #[test]
    fn matches_general_engine_across_radii() {
        for g in [gen::grid2d(15, 16), gen::scale_free(400, 3, 3), gen::path(30)] {
            for radii in [RadiiSpec::Zero, RadiiSpec::Constant(3), RadiiSpec::Constant(10)] {
                assert_matches_general(&g, &radii, 0);
            }
            assert_matches_general(&g, &RadiiSpec::Infinite, 2);
        }
    }

    #[test]
    fn matches_with_preprocessed_radii() {
        let g = gen::webgraph(600, 3, 0.3, 15, 7);
        for rho in [2usize, 8, 32] {
            let radii = compute_radii(&g, rho);
            assert_matches_general(&g, &RadiiSpec::PerVertex(&radii), 0);
        }
    }

    #[test]
    fn zero_radii_is_exactly_bfs() {
        let g = gen::grid2d(10, 10);
        let out = run(&g, &RadiiSpec::Zero, 0, EngineConfig::default());
        // steps = eccentricity (one level per step), 1 substep each.
        assert_eq!(out.stats.steps, 18);
        assert_eq!(out.stats.substeps, 18);
        assert_eq!(out.dist[99], 18);
    }

    #[test]
    #[should_panic(expected = "unit weights")]
    fn rejects_weighted_graphs() {
        let g = rs_graph::weights::reweight(
            &gen::path(4),
            rs_graph::WeightModel::UniformInt { lo: 2, hi: 9 },
            1,
        );
        run(&g, &RadiiSpec::Zero, 0, EngineConfig::default());
    }
}
