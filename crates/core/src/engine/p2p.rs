//! Goal-bounded point-to-point kernels: bidirectional meet-in-the-middle
//! and goal-directed (ALT) search.
//!
//! A forward goal-bounded solve settles every vertex closer than the goal
//! — on a large graph that is a ball of radius `d(s, t)` around `s`. The
//! two kernels here shrink that work without giving up exactness:
//!
//! * [`bidirectional`] grows a forward ball from `s` on the graph and a
//!   reverse ball from `t` on [`rs_graph::CsrGraph::transpose`],
//!   maintaining the best meeting length `μ` over every relaxation and
//!   stopping once `top_f + top_r ≥ μ` (the standard alternating
//!   meet-in-the-middle rule). Two balls of radius `d/2` scan far fewer
//!   edges than one of radius `d`.
//! * [`goal_directed`] is A* with the ALT lower bound
//!   ([`crate::Landmarks`]): pops are ordered by `δ(v) + h(v)`, so the
//!   search walks toward the goal instead of flooding a ball, and
//!   relaxations whose bound proves they cannot improve the goal are
//!   skipped outright.
//!
//! Both kernels return distances **bit-identical** to a forward solve at
//! the goal (`dist[goal]` exact; every other finite entry a true upper
//! bound — the conformance suite asserts both), record parents inline the
//! way sequential Dijkstra does, and draw every working structure from
//! [`SolverScratch`] so warm solves stay allocation-free. They are
//! sequential by design: the point-to-point serving shape runs many
//! queries in parallel across the batch/serve layers, not one query on
//! many cores.

use rs_graph::{CsrGraph, Dist, VertexId, INF};

use crate::landmarks::Landmarks;
use crate::scratch::{assert_distance_range, ScratchHeap, SolverScratch};
use crate::stats::{SsspResult, StepStats};

/// Counters shared by both kernels: one "step" per heap extraction (the
/// Dijkstra convention the baseline table documents), `relaxed_edges` =
/// edges actually scanned.
fn kernel_stats(settled: usize, relaxed: u64, scratch_reused: bool) -> StepStats {
    StepStats {
        steps: settled,
        substeps: settled,
        max_substeps_in_step: settled.min(1),
        relaxations: relaxed,
        relaxed_edges: relaxed,
        settled,
        scratch_reused,
        trace: None,
    }
}

/// The degenerate `s == t` solve both kernels share.
fn trivial_self_query(
    n: usize,
    source: VertexId,
    want_paths: bool,
    scratch: &mut SolverScratch,
) -> SsspResult {
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let parent = want_paths.then(|| {
        let mut p = vec![u32::MAX; n];
        p[source as usize] = source;
        p
    });
    let stats = kernel_stats(1, 0, scratch.finish());
    SsspResult { dist, parent, stats }
}

/// Bidirectional point-to-point Dijkstra: exact `dist[goal]`, upper bounds
/// elsewhere, meet-in-the-middle stopping rule.
///
/// The forward search runs on `g`, the reverse search on `g.transpose()`
/// (so it computes `d(v, goal)` even on asymmetric graphs); `μ` is the
/// best known `s → t` length, re-checked at *every* relaxation from
/// `δ_self(v) + δ_other(v)` — both tentative values are real path
/// lengths, so `μ` is always achievable, and once `top_f + top_r ≥ μ` no
/// undiscovered path can beat it. Each round expands the side with the
/// smaller head key (ties forward), which balances the two balls.
pub fn bidirectional<H: ScratchHeap>(
    g: &CsrGraph,
    source: VertexId,
    goal: VertexId,
    want_paths: bool,
    scratch: &mut SolverScratch,
) -> SsspResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert!((goal as usize) < n, "goal out of range");
    assert_distance_range(g);
    scratch.begin(n);
    if source == goal {
        return trivial_self_query(n, source, want_paths, scratch);
    }
    let gt = g.transpose();
    // Heaps come out of their slots before the views borrow the scratch.
    let mut heap_f: H = scratch.checkout_heap();
    let mut heap_r: H = scratch.checkout_heap_rev();
    let (view, rev) = scratch.view_bidir();
    let (dist_f, settled_f) = (view.dist, view.settled);
    let (dist_r, settled_r) = (rev.dist, rev.settled);
    // Per-side parent arrays (scratch-buffer backed): always recorded —
    // the stitch below needs the reverse chain even when the caller did
    // not ask for paths.
    let parent_f = view.verts_a;
    let parent_r = view.verts_b;
    parent_f.resize(n, u32::MAX);
    parent_f.fill(u32::MAX);
    parent_r.resize(n, u32::MAX);
    parent_r.fill(u32::MAX);

    dist_f.store(source as usize, 0);
    parent_f[source as usize] = source;
    heap_f.push_or_decrease(source, 0);
    dist_r.store(goal as usize, 0);
    parent_r[goal as usize] = goal;
    heap_r.push_or_decrease(goal, 0);

    let mut mu = INF; // best known s → t length
    let mut meet = u32::MAX; // vertex certifying μ
    let mut settled = 0usize;
    let mut relaxed = 0u64;
    loop {
        let top_f = heap_f.peek_min().map_or(INF, |(_, k)| k);
        let top_r = heap_r.peek_min().map_or(INF, |(_, k)| k);
        if top_f.saturating_add(top_r) >= mu {
            break; // also exits when both heaps drain with μ = ∞
        }
        let forward = top_f <= top_r;
        let (graph, heap, dist, dist_other, done, parent) = if forward {
            (g, &mut heap_f, dist_f, dist_r, settled_f, &mut *parent_f)
        } else {
            (gt, &mut heap_r, dist_r, dist_f, settled_r, &mut *parent_r)
        };
        let (u, du) = heap.pop_min().expect("peek saw a finite key");
        done.set(u as usize);
        settled += 1;
        relaxed += graph.degree(u) as u64;
        for (v, w) in graph.edges(u) {
            let cand = du.saturating_add(w as Dist);
            if !done.get(v as usize) && cand < dist.load(v as usize) {
                dist.write_min(v as usize, cand);
                heap.push_or_decrease(v, cand);
                parent[v as usize] = u;
            }
            // μ-update on every relaxation, *after* the write so the sum
            // uses this side's best tentative value: both δ's are real
            // path lengths, so their sum is an achievable s → t walk, and
            // every event that lowers either side's entry re-checks here —
            // μ = min_v (δ_f(v) + δ_r(v)) over all doubly-reached v.
            let other = dist_other.load(v as usize);
            if other != INF {
                let through = dist.load(v as usize).saturating_add(other);
                if through < mu {
                    mu = through;
                    meet = v;
                }
            }
        }
    }

    // Forward tentative distances are real upper bounds; stitch the exact
    // tail through the meet vertex on top of them. At termination
    // μ = δ_f(meet) + δ_r(meet) = d(s, t), which forces *both* halves
    // exact, and every hop of the reverse parent chain is tight — so the
    // forward distance along meet → t telescopes as
    // δ_f(next) = δ_f(cur) + (δ_r(cur) − δ_r(next)).
    let mut dist = dist_f.snapshot(n);
    if mu != INF {
        let mut cur = meet;
        let mut acc = dist[meet as usize];
        debug_assert_eq!(acc.saturating_add(dist_r.load(meet as usize)), mu);
        while cur != goal {
            let next = parent_r[cur as usize];
            debug_assert!(next != u32::MAX, "reverse chain broken before the goal");
            acc += dist_r.load(cur as usize) - dist_r.load(next as usize);
            dist[next as usize] = acc;
            if want_paths {
                parent_f[next as usize] = cur;
            }
            cur = next;
        }
        debug_assert_eq!(dist[goal as usize], mu, "stitched goal distance must equal μ");
    }
    let parent = want_paths.then(|| parent_f.clone());
    let stats = kernel_stats(settled, relaxed, {
        scratch.return_heap(heap_f);
        scratch.return_heap_rev(heap_r);
        scratch.finish()
    });
    SsspResult { dist, parent, stats }
}

/// Goal-directed point-to-point search: A* ordered by `δ(v) + h(v)` with
/// the ALT landmark bound, plus incumbent pruning.
///
/// The bound is consistent (each hop changes `h` by at most the hop's
/// weight — the triangle inequality through every landmark), so pops carry
/// exact distances just as in Dijkstra and the first pop of `goal` ends
/// the search with `dist[goal]` exact. A relaxation is skipped when
/// `cand + h(v)` already exceeds the goal's tentative distance (strict
/// `>`: equal-length candidates still propagate parents) or when
/// `h(v) = ∞` proves `v` cannot reach the goal at all.
pub fn goal_directed<H: ScratchHeap>(
    g: &CsrGraph,
    source: VertexId,
    goal: VertexId,
    landmarks: &Landmarks,
    want_paths: bool,
    scratch: &mut SolverScratch,
) -> SsspResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert!((goal as usize) < n, "goal out of range");
    assert_distance_range(g);
    scratch.begin(n);
    if source == goal {
        return trivial_self_query(n, source, want_paths, scratch);
    }
    let goal_row = landmarks.goal_row(goal);
    if landmarks.lower_bound(source, &goal_row) == INF {
        // A landmark separates source and goal: provably unreachable, no
        // search at all.
        let mut dist = vec![INF; n];
        dist[source as usize] = 0;
        let parent = want_paths.then(|| {
            let mut p = vec![u32::MAX; n];
            p[source as usize] = source;
            p
        });
        let stats = kernel_stats(1, 0, scratch.finish());
        return SsspResult { dist, parent, stats };
    }
    let mut heap: H = scratch.checkout_heap();
    let view = scratch.view();
    let (dist, done) = (view.dist, view.settled);
    let parent = view.verts_a;
    parent.resize(n, u32::MAX);
    parent.fill(u32::MAX);

    dist.store(source as usize, 0);
    parent[source as usize] = source;
    heap.push_or_decrease(source, landmarks.lower_bound(source, &goal_row));

    let mut settled = 0usize;
    let mut relaxed = 0u64;
    while let Some((u, _f)) = heap.pop_min() {
        done.set(u as usize);
        settled += 1;
        if u == goal {
            break; // consistent h ⇒ first pop of the goal is exact
        }
        let du = dist.load(u as usize);
        relaxed += g.degree(u) as u64;
        for (v, w) in g.edges(u) {
            if done.get(v as usize) {
                continue;
            }
            let cand = du.saturating_add(w as Dist);
            let hv = landmarks.lower_bound(v, &goal_row);
            if hv == INF {
                continue; // v provably cannot reach the goal
            }
            // Incumbent prune: a path through v is at least cand + h(v).
            if cand.saturating_add(hv) > dist.load(goal as usize) {
                continue;
            }
            if cand < dist.load(v as usize) {
                dist.write_min(v as usize, cand);
                heap.push_or_decrease(v, cand.saturating_add(hv));
                parent[v as usize] = u;
            }
        }
    }

    let out = dist.snapshot(n);
    let parent = want_paths.then(|| parent.clone());
    let stats = kernel_stats(settled, relaxed, {
        scratch.return_heap(heap);
        scratch.finish()
    });
    SsspResult { dist: out, parent, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landmarks::DEFAULT_LANDMARKS;
    use rs_ds::DaryHeap;
    use rs_graph::{gen, weights, EdgeListBuilder, WeightModel};

    fn reference(g: &CsrGraph, s: VertexId) -> Vec<Dist> {
        crate::radius_stepping(g, &crate::RadiiSpec::Zero, s).dist
    }

    fn weighted(seed: u64) -> CsrGraph {
        weights::reweight(&gen::grid2d(13, 14), WeightModel::paper_weighted(), seed)
    }

    #[test]
    fn bidirectional_goal_distance_is_exact() {
        let g = weighted(3);
        let truth = reference(&g, 0);
        let mut scratch = SolverScratch::new();
        for goal in [0u32, 1, 90, 181] {
            let out = bidirectional::<DaryHeap>(&g, 0, goal, true, &mut scratch);
            assert_eq!(out.dist[goal as usize], truth[goal as usize], "goal {goal}");
            // Every finite entry is a true upper bound.
            for (v, &d) in out.dist.iter().enumerate() {
                assert!(d == INF || d >= truth[v], "entry {v} below the true distance");
            }
            // The recorded path telescopes to the goal distance.
            let path = out.extract_path(goal).expect("reachable");
            let mut acc = 0u64;
            for w in path.windows(2) {
                acc += g.arc_weight(w[0], w[1]).expect("edge") as u64;
            }
            assert_eq!(acc, out.dist[goal as usize]);
        }
    }

    #[test]
    fn goal_directed_matches_and_prunes() {
        let g = weighted(5);
        let lm = Landmarks::build(&g, DEFAULT_LANDMARKS);
        let truth = reference(&g, 7);
        let mut scratch = SolverScratch::new();
        let out = goal_directed::<DaryHeap>(&g, 7, 180, &lm, true, &mut scratch);
        assert_eq!(out.dist[180], truth[180]);
        for (v, &d) in out.dist.iter().enumerate() {
            assert!(d == INF || d >= truth[v], "entry {v} below the true distance");
        }
        let path = out.extract_path(180).expect("reachable");
        assert_eq!((path[0], *path.last().unwrap()), (7, 180));
        // Goal-directed must scan fewer edges than the full solve has.
        assert!(out.stats.relaxed_edges < g.num_edges() as u64);
    }

    #[test]
    fn both_kernels_terminate_on_unreachable_goals() {
        let mut b = EdgeListBuilder::new(5);
        b.add_edge(0, 1, 2);
        b.add_edge(3, 4, 9); // separate component
        let g = b.build();
        let mut scratch = SolverScratch::new();
        let out = bidirectional::<DaryHeap>(&g, 0, 4, true, &mut scratch);
        assert_eq!(out.dist[4], INF);
        assert!(out.extract_path(4).is_none());
        let lm = Landmarks::build(&g, 2);
        let alt = goal_directed::<DaryHeap>(&g, 0, 4, &lm, true, &mut scratch);
        assert_eq!(alt.dist[4], INF);
        assert_eq!(alt.stats.relaxed_edges, 0, "landmark proof skips the search");
    }

    #[test]
    fn self_query_is_trivial() {
        let g = weighted(1);
        let lm = Landmarks::build(&g, 2);
        let mut scratch = SolverScratch::new();
        for out in [
            bidirectional::<DaryHeap>(&g, 9, 9, true, &mut scratch),
            goal_directed::<DaryHeap>(&g, 9, 9, &lm, true, &mut scratch),
        ] {
            assert_eq!(out.dist[9], 0);
            assert_eq!(out.extract_path(9), Some(vec![9]));
            assert_eq!(out.stats.settled, 1);
        }
    }

    #[test]
    fn warm_bidirectional_solves_reuse_scratch() {
        let g = weighted(8);
        let mut scratch = SolverScratch::new();
        scratch.warm_up_bidir(&g);
        scratch.warm_heap::<DaryHeap>(g.num_vertices());
        scratch.warm_heap_rev::<DaryHeap>(g.num_vertices());
        let out = bidirectional::<DaryHeap>(&g, 0, 170, false, &mut scratch);
        assert!(out.stats.scratch_reused, "warmed first solve must not allocate");
        let again = bidirectional::<DaryHeap>(&g, 170, 0, false, &mut scratch);
        assert!(again.stats.scratch_reused);
        assert_eq!(out.dist[170], again.dist[0], "symmetric graph: d(s,t) = d(t,s)");
    }
}
