//! The Algorithm-2 engine: fringe maintained in two join-based treaps.
//!
//! Exactly the efficient implementation of §3.3: `Q` holds the unsettled
//! relaxed vertices keyed by `(δ(u), u)`, `R` holds them keyed by
//! `(δ(u) + r(u), u)`. Each step reads `d_i` from `R`'s minimum, obtains
//! the active set with `Q.split(d_i)`, and runs Bellman–Ford substeps in
//! which relaxations are applied with a parallel priority-write and the
//! treaps are maintained with *batched* `difference`/`union` of sorted key
//! sets — the parallel-BST data flow the paper describes (build a BST of
//! successful relaxations, subtract out-of-date keys, split by `d_i`, union
//! each part with `A_i` and `Q`).
//!
//! Step counts, round distances and distances are identical to the
//! [`super::frontier`] engine (asserted in cross-engine tests); only the
//! constant factors differ.

use rayon::prelude::*;

use rs_ds::Treap;
use rs_graph::{CsrGraph, Dist, VertexId};
use rs_par::{AtomicBitset, EpochMinArray};

use crate::radii::RadiiSpec;
use crate::scratch::SolverScratch;
use crate::stats::{SsspResult, StepStats, StepTrace};
use crate::EngineConfig;

const SEQ_SUBSTEP: usize = 2048;

pub(crate) fn run(
    g: &CsrGraph,
    radii: &RadiiSpec,
    source: VertexId,
    config: EngineConfig,
) -> SsspResult {
    run_with(g, radii, source, config, &mut SolverScratch::new())
}

pub(crate) fn run_with(
    g: &CsrGraph,
    radii: &RadiiSpec,
    source: VertexId,
    config: EngineConfig,
    scratch: &mut SolverScratch,
) -> SsspResult {
    let n = g.num_vertices();
    crate::scratch::assert_distance_range(g);
    scratch.begin(n);
    let mut stats = StepStats { trace: config.trace.then(Vec::new), ..Default::default() };
    let out_dist;
    {
        let view = scratch.view();
        let dist = view.dist;
        let settled = view.settled;
        let in_active = view.mark_a;
        let touched = view.mark_b;
        // Membership + current key of each vertex in Q (and, shifted by r,
        // R). `qkey` is the scratch's stale distance buffer: an entry is
        // only read while its `in_q` bit is set, and the bit is only set
        // after the entry was written this solve.
        let in_q = view.mark_c;
        let qkey = view.dists;
        let active = view.verts_a;

        // Lines 1–4: settle the source; Q/R seeded with its neighbours.
        dist.store(source as usize, 0);
        settled.set(source as usize);
        stats.settled = 1;
        stats.relaxations += g.degree(source) as u64;
        let mut q_inserts: Vec<(Dist, VertexId)> = Vec::new();
        for (v, w) in g.edges(source) {
            dist.write_min(v as usize, w as Dist);
            if in_q.set(v as usize) {
                qkey[v as usize] = w as Dist;
                q_inserts.push((w as Dist, v));
            }
        }
        q_inserts.sort_unstable();
        let mut q = Treap::from_sorted(&q_inserts);
        let mut r_inserts: Vec<(Dist, VertexId)> =
            q_inserts.iter().map(|&(d, v)| (radii.key(v, d), v)).collect();
        r_inserts.sort_unstable();
        let mut r = Treap::from_sorted(&r_inserts);

        while !q.is_empty() {
            debug_assert_eq!(q.len(), r.len(), "Q and R must stay in lockstep");
            // Early exit for goal-bounded solves (settled distances are
            // final).
            if config.goal.is_some_and(|g| settled.get(g as usize)) {
                break;
            }
            // Line 6: d_i from R's minimum (the lead vertex attains it).
            let di = r.min().expect("Q nonempty implies R nonempty").0;

            // Line 7: {A_i, Q} = Q.split(d_i).
            let a_i = q.split_at_most(di);
            active.clear();
            active.extend(a_i.to_vec().iter().map(|&(_, v)| v));
            // Line 8: remove A_i's entries from R (batched difference).
            let mut r_removals: Vec<(Dist, VertexId)> =
                active.iter().map(|&v| (radii.key(v, qkey[v as usize]), v)).collect();
            r_removals.sort_unstable();
            r = Treap::difference(r, Treap::from_sorted(&r_removals));
            for &v in active.iter() {
                in_q.clear(v as usize);
                in_active.set(v as usize);
            }

            // Lines 9–19: substeps.
            let mut dirty: Vec<VertexId> = active.clone();
            let mut substeps = 0;
            loop {
                substeps += 1;
                stats.relaxations += dirty.iter().map(|&u| g.degree(u) as u64).sum::<u64>();
                // Synchronous substep: snapshot source distances first, so
                // the substep count is schedule-independent (as in
                // `frontier`).
                let snapshot: Vec<(VertexId, Dist)> =
                    dirty.iter().map(|&u| (u, dist.load(u as usize))).collect();
                let claimed = relax_parallel(g, dist, settled, touched, &snapshot);

                // Apply phase: reconcile every claimed vertex with Q/R,
                // exactly the three cases of §3.3.
                let mut next_dirty: Vec<VertexId> = Vec::new();
                let mut any_le = false;
                let mut q_remove: Vec<(Dist, VertexId)> = Vec::new();
                let mut r_remove: Vec<(Dist, VertexId)> = Vec::new();
                let mut q_insert: Vec<(Dist, VertexId)> = Vec::new();
                let mut r_insert: Vec<(Dist, VertexId)> = Vec::new();
                for &v in &claimed {
                    touched.clear(v as usize);
                    let new = dist.load(v as usize);
                    if new <= di {
                        any_le = true;
                    }
                    if in_active.get(v as usize) {
                        // Case (1): already active — only its δ changed.
                        debug_assert!(new <= di);
                        next_dirty.push(v);
                        continue;
                    }
                    let was_in_q = in_q.get(v as usize);
                    if was_in_q {
                        q_remove.push((qkey[v as usize], v));
                        r_remove.push((radii.key(v, qkey[v as usize]), v));
                    }
                    if new <= di {
                        // Case (2): crossed the round distance — joins A_i.
                        in_q.clear(v as usize);
                        in_active.set(v as usize);
                        active.push(v);
                        next_dirty.push(v);
                    } else {
                        // Case (3): decrease-key in Q and R (or fresh
                        // insert).
                        q_insert.push((new, v));
                        r_insert.push((radii.key(v, new), v));
                        qkey[v as usize] = new;
                        in_q.set(v as usize);
                    }
                }
                if !q_remove.is_empty() {
                    q_remove.sort_unstable();
                    r_remove.sort_unstable();
                    q = Treap::difference(q, Treap::from_sorted(&q_remove));
                    r = Treap::difference(r, Treap::from_sorted(&r_remove));
                }
                if !q_insert.is_empty() {
                    q_insert.sort_unstable();
                    r_insert.sort_unstable();
                    q = Treap::union(q, Treap::from_sorted(&q_insert));
                    r = Treap::union(r, Treap::from_sorted(&r_insert));
                }
                dirty = next_dirty;
                if !any_le {
                    break;
                }
            }

            // Settle the active set.
            for &v in active.iter() {
                settled.set(v as usize);
                in_active.clear(v as usize);
                debug_assert!(dist.load(v as usize) <= di);
            }
            stats.record_step(Some(StepTrace {
                d_i: di,
                settled: active.len(),
                substeps,
                active_size: active.len(),
            }));
        }

        out_dist = dist.snapshot(n);
    }
    stats.scratch_reused = scratch.finish();
    SsspResult::new(out_dist, stats)
}

/// Parallel relaxation of `dirty`'s out-edges; returns the set of vertices
/// whose δ dropped, each claimed exactly once via the `touched` bitset.
fn relax_parallel(
    g: &CsrGraph,
    dist: &EpochMinArray,
    settled: &AtomicBitset,
    touched: &AtomicBitset,
    dirty: &[(VertexId, Dist)],
) -> Vec<VertexId> {
    let relax_one = |acc: &mut Vec<VertexId>, (u, du): (VertexId, Dist)| {
        for (v, w) in g.edges(u) {
            if settled.get(v as usize) {
                continue;
            }
            if dist.write_min(v as usize, du + w as Dist) && touched.set(v as usize) {
                acc.push(v);
            }
        }
    };
    if dirty.len() < SEQ_SUBSTEP {
        let mut acc = Vec::new();
        for &pair in dirty {
            relax_one(&mut acc, pair);
        }
        acc
    } else {
        dirty
            .par_iter()
            .fold(Vec::new, |mut acc, &pair| {
                relax_one(&mut acc, pair);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::frontier;
    use rs_graph::{gen, weights, WeightModel};

    fn both(g: &CsrGraph, radii: &RadiiSpec, s: VertexId) -> (SsspResult, SsspResult) {
        (
            frontier::run(g, radii, s, EngineConfig::with_trace()),
            run(g, radii, s, EngineConfig::with_trace()),
        )
    }

    fn assert_equivalent(g: &CsrGraph, radii: &RadiiSpec, s: VertexId) {
        let (f, b) = both(g, radii, s);
        assert_eq!(f.dist, b.dist, "distances differ");
        assert_eq!(f.stats.steps, b.stats.steps, "step counts differ");
        assert_eq!(f.stats.substeps, b.stats.substeps, "substep counts differ");
        let ft = f.stats.trace.unwrap();
        let bt = b.stats.trace.unwrap();
        let f_d: Vec<Dist> = ft.iter().map(|t| t.d_i).collect();
        let b_d: Vec<Dist> = bt.iter().map(|t| t.d_i).collect();
        assert_eq!(f_d, b_d, "round-distance sequences differ");
    }

    #[test]
    fn engines_equivalent_across_radii() {
        let g = weights::reweight(&gen::grid2d(10, 12), WeightModel::paper_weighted(), 6);
        for radii in [RadiiSpec::Zero, RadiiSpec::Constant(1000), RadiiSpec::Constant(20_000)] {
            assert_equivalent(&g, &radii, 0);
        }
        assert_equivalent(&g, &RadiiSpec::Infinite, 17);
    }

    #[test]
    fn engines_equivalent_on_scale_free() {
        let g = weights::reweight(&gen::scale_free(300, 3, 4), WeightModel::paper_weighted(), 8);
        let radii: Vec<Dist> = (0..300).map(|v| (v as Dist * 37) % 5000).collect();
        assert_equivalent(&g, &RadiiSpec::PerVertex(&radii), 5);
    }

    #[test]
    fn unreachable_vertices() {
        let g = gen::star(6); // solve from a leaf: everything reachable via center
        let (f, b) = both(&g, &RadiiSpec::Zero, 3);
        assert_eq!(f.dist, b.dist);
        assert_eq!(b.stats.settled, 6);
    }
}
