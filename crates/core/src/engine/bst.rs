//! The Algorithm-2 engine: fringe maintained in two join-based treaps.
//!
//! Exactly the efficient implementation of §3.3: `Q` holds the unsettled
//! relaxed vertices keyed by `(δ(u), u)`, `R` holds them keyed by
//! `(δ(u) + r(u), u)`. Each step reads `d_i` from `R`'s minimum, obtains
//! the active set with `Q.split(d_i)`, and runs Bellman–Ford substeps in
//! which relaxations are applied with a parallel priority-write and the
//! treaps are maintained with *batched* `difference`/`union` of sorted key
//! sets — the parallel-BST data flow the paper describes (build a BST of
//! successful relaxations, subtract out-of-date keys, split by `d_i`, union
//! each part with `A_i` and `Q`).
//!
//! Step counts, round distances and distances are identical to the
//! [`super::frontier`] engine (asserted in cross-engine tests); only the
//! constant factors differ.

use rayon::prelude::*;

use rs_ds::Treap;
use rs_graph::{CsrGraph, Dist, VertexId};
use rs_par::{AtomicBitset, EpochMinArray};

use crate::radii::RadiiSpec;
use crate::scratch::{ParentClaim, SolverScratch};
use crate::stats::{SsspResult, StepStats, StepTrace};
use crate::EngineConfig;

const SEQ_SUBSTEP: usize = 2048;

pub(crate) fn run(
    g: &CsrGraph,
    radii: &RadiiSpec,
    source: VertexId,
    config: EngineConfig<'_>,
) -> SsspResult {
    run_with(g, radii, source, config, &mut SolverScratch::new())
}

pub(crate) fn run_with(
    g: &CsrGraph,
    radii: &RadiiSpec,
    source: VertexId,
    config: EngineConfig<'_>,
    scratch: &mut SolverScratch,
) -> SsspResult {
    let n = g.num_vertices();
    crate::scratch::assert_distance_range(g);
    scratch.begin(n);
    let mut stats = StepStats { trace: config.trace.then(Vec::new), ..Default::default() };
    // Inline parent tree (part of the result, not working state); claims
    // are resolved at substep end like the frontier engine's.
    let mut parent: Option<Vec<VertexId>> = config.record_parents.then(|| vec![u32::MAX; n]);
    // Every treap node this solve builds or discards cycles through the
    // scratch's arena, so a warm solve stops paying per-substep node
    // allocation for its Q/R batches. Live nodes never exceed
    // |Q| + |R| + one in-flight batch ≤ 3n (batches are built one at a
    // time and consumed immediately), so pre-minting that bound makes the
    // first solve pay the whole pool once and every later solve — from any
    // source, any radii, goal-bounded or not — run deterministically
    // mint-free. One-shot throwaway-scratch solves pay the full pool for a
    // guarantee they never collect; that is the price of keeping
    // warm-after-first-solve unconditional (on-demand minting would make
    // a later solve with a larger peak go cold again).
    let mut arena = scratch.checkout_treap_arena();
    arena.reserve_nodes(3 * n + 4);
    let out_dist;
    {
        let view = scratch.view();
        let dist = view.dist;
        let settled = view.settled;
        let in_active = view.mark_a;
        let touched = view.mark_b;
        // Membership + current key of each vertex in Q (and, shifted by r,
        // R). `qkey` is the scratch's stale distance buffer: an entry is
        // only read while its `in_q` bit is set, and the bit is only set
        // after the entry was written this solve.
        let in_q = view.mark_c;
        let qkey = view.dists;
        let active = view.verts_a;
        let dirty = view.verts_c;
        let next_dirty = view.verts_d;
        let claimed = view.verts_e;
        let snapshot = view.pairs;
        let claims = view.claims;
        // Per-substep treap batches, hoisted into the scratch: removals in
        // `q_rm`/`r_rm`, insertions in `q_ins`/`r_ins`.
        let q_rm = view.keys_a;
        let r_rm = view.keys_b;
        let q_ins = view.keys_c;
        let r_ins = view.keys_d;
        let record = parent.is_some();

        // Lines 1–4: settle the source; Q/R seeded with its neighbours.
        dist.store(source as usize, 0);
        settled.set(source as usize);
        stats.settled = 1;
        stats.relaxations += g.degree(source) as u64;
        if let Some(p) = parent.as_deref_mut() {
            p[source as usize] = source;
        }
        q_rm.clear();
        for (v, w) in g.edges(source) {
            if dist.write_min(v as usize, w as Dist) {
                if let Some(p) = parent.as_deref_mut() {
                    p[v as usize] = source;
                }
            }
            if in_q.set(v as usize) {
                qkey[v as usize] = w as Dist;
                q_rm.push((w as Dist, v));
            }
        }
        q_rm.sort_unstable();
        let mut q = Treap::from_sorted_in(q_rm, &mut arena);
        r_rm.clear();
        r_rm.extend(q_rm.iter().map(|&(d, v)| (radii.key(v, d), v)));
        r_rm.sort_unstable();
        let mut r = Treap::from_sorted_in(r_rm, &mut arena);

        while !q.is_empty() {
            debug_assert_eq!(q.len(), r.len(), "Q and R must stay in lockstep");
            // Early exit for goal-bounded solves (settled distances are
            // final once every goal is in S).
            if config.goals.all_done(|g| settled.get(g as usize)) {
                break;
            }
            // Line 6: d_i from R's minimum (the lead vertex attains it).
            let di = r.min().expect("Q nonempty implies R nonempty").0;

            // Line 7: {A_i, Q} = Q.split(d_i).
            let a_i = q.split_at_most_in(di, &mut arena);
            active.clear();
            a_i.for_each(|(_, v)| active.push(v));
            arena.recycle(a_i);
            // Line 8: remove A_i's entries from R (batched difference).
            r_rm.clear();
            r_rm.extend(active.iter().map(|&v| (radii.key(v, qkey[v as usize]), v)));
            r_rm.sort_unstable();
            r = Treap::difference_in(r, Treap::from_sorted_in(r_rm, &mut arena), &mut arena);
            for &v in active.iter() {
                in_q.clear(v as usize);
                in_active.set(v as usize);
            }

            // Lines 9–19: substeps.
            dirty.clear();
            dirty.extend_from_slice(active);
            let mut substeps = 0;
            loop {
                substeps += 1;
                stats.relaxations += dirty.iter().map(|&u| g.degree(u) as u64).sum::<u64>();
                // Synchronous substep: snapshot source distances first, so
                // the substep count is schedule-independent (as in
                // `frontier`).
                snapshot.clear();
                snapshot.extend(dirty.iter().map(|&u| (u, dist.load(u as usize))));
                claimed.clear();
                claims.clear();
                relax_parallel(g, dist, settled, touched, snapshot, claimed, claims, record);
                if let Some(p) = parent.as_deref_mut() {
                    crate::scratch::resolve_parent_claims(p, dist, claims);
                }

                // Apply phase: reconcile every claimed vertex with Q/R,
                // exactly the three cases of §3.3.
                next_dirty.clear();
                let mut any_le = false;
                q_rm.clear();
                r_rm.clear();
                q_ins.clear();
                r_ins.clear();
                for &v in claimed.iter() {
                    touched.clear(v as usize);
                    let new = dist.load(v as usize);
                    if new <= di {
                        any_le = true;
                    }
                    if in_active.get(v as usize) {
                        // Case (1): already active — only its δ changed.
                        debug_assert!(new <= di);
                        next_dirty.push(v);
                        continue;
                    }
                    let was_in_q = in_q.get(v as usize);
                    if was_in_q {
                        q_rm.push((qkey[v as usize], v));
                        r_rm.push((radii.key(v, qkey[v as usize]), v));
                    }
                    if new <= di {
                        // Case (2): crossed the round distance — joins A_i.
                        in_q.clear(v as usize);
                        in_active.set(v as usize);
                        active.push(v);
                        next_dirty.push(v);
                    } else {
                        // Case (3): decrease-key in Q and R (or fresh
                        // insert).
                        q_ins.push((new, v));
                        r_ins.push((radii.key(v, new), v));
                        qkey[v as usize] = new;
                        in_q.set(v as usize);
                    }
                }
                if !q_rm.is_empty() {
                    q_rm.sort_unstable();
                    r_rm.sort_unstable();
                    q = Treap::difference_in(
                        q,
                        Treap::from_sorted_in(q_rm, &mut arena),
                        &mut arena,
                    );
                    r = Treap::difference_in(
                        r,
                        Treap::from_sorted_in(r_rm, &mut arena),
                        &mut arena,
                    );
                }
                if !q_ins.is_empty() {
                    q_ins.sort_unstable();
                    r_ins.sort_unstable();
                    q = Treap::union_in(q, Treap::from_sorted_in(q_ins, &mut arena), &mut arena);
                    r = Treap::union_in(r, Treap::from_sorted_in(r_ins, &mut arena), &mut arena);
                }
                std::mem::swap(dirty, next_dirty);
                if !any_le {
                    break;
                }
            }

            // Settle the active set.
            for &v in active.iter() {
                settled.set(v as usize);
                in_active.clear(v as usize);
                debug_assert!(dist.load(v as usize) <= di);
            }
            stats.record_step(Some(StepTrace {
                d_i: di,
                settled: active.len(),
                substeps,
                active_size: active.len(),
            }));
        }

        out_dist = dist.snapshot(n);
        // A goal-bounded exit leaves Q/R populated; park their nodes for
        // the next solve either way.
        arena.recycle(q);
        arena.recycle(r);
        if config.goals.bounded() {
            if let Some(p) = parent.as_deref_mut() {
                crate::scratch::clear_unsettled_parents(p, settled);
            }
        }
    }
    scratch.return_treap_arena(arena);
    stats.scratch_reused = scratch.finish();
    // Forward solves scan every edge they relax.
    stats.relaxed_edges = stats.relaxations;
    let mut result = SsspResult::new(out_dist, stats);
    result.parent = parent;
    result
}

/// Parallel relaxation of `dirty`'s out-edges. Vertices whose δ dropped
/// land in `claimed` (each exactly once, via the `touched` bitset);
/// successful relaxations are appended to `claims` when `record` is set
/// (the inline-parent log). The sequential path (< `SEQ_SUBSTEP`) writes
/// straight into the caller's scratch buffers.
#[allow(clippy::too_many_arguments)]
fn relax_parallel(
    g: &CsrGraph,
    dist: &EpochMinArray,
    settled: &AtomicBitset,
    touched: &AtomicBitset,
    dirty: &[(VertexId, Dist)],
    claimed: &mut Vec<VertexId>,
    claims: &mut Vec<ParentClaim>,
    record: bool,
) {
    let relax_one = |claimed_out: &mut Vec<VertexId>,
                     claims_out: &mut Vec<ParentClaim>,
                     (u, du): (VertexId, Dist)| {
        for (v, w) in g.edges(u) {
            if settled.get(v as usize) {
                continue;
            }
            let cand = du + w as Dist;
            if dist.write_min(v as usize, cand) {
                if record {
                    claims_out.push((v, cand, u));
                }
                if touched.set(v as usize) {
                    claimed_out.push(v);
                }
            }
        }
    };
    if dirty.len() < SEQ_SUBSTEP {
        for &pair in dirty {
            relax_one(claimed, claims, pair);
        }
    } else {
        let (mut c, mut cl) = dirty
            .par_iter()
            .fold(
                || (Vec::new(), Vec::new()),
                |(mut c, mut cl), &pair| {
                    relax_one(&mut c, &mut cl, pair);
                    (c, cl)
                },
            )
            .reduce(
                || (Vec::new(), Vec::new()),
                |(mut a, mut acl), (mut b, mut bcl)| {
                    a.append(&mut b);
                    acl.append(&mut bcl);
                    (a, acl)
                },
            );
        claimed.append(&mut c);
        claims.append(&mut cl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::frontier;
    use rs_graph::{gen, weights, WeightModel};

    fn both(g: &CsrGraph, radii: &RadiiSpec, s: VertexId) -> (SsspResult, SsspResult) {
        (
            frontier::run(g, radii, s, EngineConfig::with_trace()),
            run(g, radii, s, EngineConfig::with_trace()),
        )
    }

    fn assert_equivalent(g: &CsrGraph, radii: &RadiiSpec, s: VertexId) {
        let (f, b) = both(g, radii, s);
        assert_eq!(f.dist, b.dist, "distances differ");
        assert_eq!(f.stats.steps, b.stats.steps, "step counts differ");
        assert_eq!(f.stats.substeps, b.stats.substeps, "substep counts differ");
        let ft = f.stats.trace.unwrap();
        let bt = b.stats.trace.unwrap();
        let f_d: Vec<Dist> = ft.iter().map(|t| t.d_i).collect();
        let b_d: Vec<Dist> = bt.iter().map(|t| t.d_i).collect();
        assert_eq!(f_d, b_d, "round-distance sequences differ");
    }

    #[test]
    fn engines_equivalent_across_radii() {
        let g = weights::reweight(&gen::grid2d(10, 12), WeightModel::paper_weighted(), 6);
        for radii in [RadiiSpec::Zero, RadiiSpec::Constant(1000), RadiiSpec::Constant(20_000)] {
            assert_equivalent(&g, &radii, 0);
        }
        assert_equivalent(&g, &RadiiSpec::Infinite, 17);
    }

    #[test]
    fn engines_equivalent_on_scale_free() {
        let g = weights::reweight(&gen::scale_free(300, 3, 4), WeightModel::paper_weighted(), 8);
        let radii: Vec<Dist> = (0..300).map(|v| (v as Dist * 37) % 5000).collect();
        assert_equivalent(&g, &RadiiSpec::PerVertex(&radii), 5);
    }

    #[test]
    fn scratch_arena_reused_across_solves() {
        // The treap node arena lives in the scratch: solve 1 mints nodes
        // (cold), every later solve — full or goal-bounded — runs on
        // recycled nodes and reports a warm scratch.
        let g = weights::reweight(&gen::grid2d(11, 11), WeightModel::paper_weighted(), 4);
        let mut scratch = SolverScratch::new();
        let mut cfgs = vec![EngineConfig::default(); 4];
        cfgs[2] = EngineConfig::with_goal(60); // early exit leaves Q/R nonempty
        for (i, (s, cfg)) in [0u32, 120, 60, 7].into_iter().zip(cfgs).enumerate() {
            let warm = run_with(&g, &RadiiSpec::Constant(700), s, cfg, &mut scratch);
            let fresh = run(&g, &RadiiSpec::Constant(700), s, cfg);
            assert_eq!(warm.dist, fresh.dist, "solve {i}");
            assert_eq!(warm.stats.scratch_reused, i > 0, "solve {i}: arena must be warm");
        }
        assert_eq!(scratch.reuses(), 3);
    }

    #[test]
    fn inline_parents_telescope_on_goal_bounded_solve() {
        let g = weights::reweight(&gen::grid2d(10, 10), WeightModel::paper_weighted(), 7);
        let goal = 99u32;
        let out = run(
            &g,
            &RadiiSpec::Constant(1_200),
            0,
            EngineConfig::with_goal(goal).record_parents(true),
        );
        let parent = out.parent.as_ref().expect("inline parents recorded");
        let path = crate::stats::extract_path(parent, goal).expect("goal settled");
        assert_eq!((path[0], *path.last().unwrap()), (0, goal));
        let mut acc = 0u64;
        for w in path.windows(2) {
            acc += g.arc_weight(w[0], w[1]).expect("path edge") as u64;
        }
        assert_eq!(acc, out.dist[goal as usize]);
    }

    #[test]
    fn unreachable_vertices() {
        let g = gen::star(6); // solve from a leaf: everything reachable via center
        let (f, b) = both(&g, &RadiiSpec::Zero, 3);
        assert_eq!(f.dist, b.dist);
        assert_eq!(b.stats.settled, 6);
    }
}
