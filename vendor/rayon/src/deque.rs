//! Chase–Lev work-stealing deque over [`JobRef`]s.
//!
//! One deque per worker: the owning worker pushes and pops jobs LIFO at the
//! *bottom* (hot in cache, matches fork-join recursion order), thieves claim
//! jobs FIFO at the *top* (the oldest — hence largest — pending subtree, the
//! property that makes stealing pay its synchronisation cost). The memory
//! orderings follow Lê, Pop, Cohen & Zappa Nardelli, *Correct and Efficient
//! Work-Stealing for Weak Memory Models* (PPoPP '13).
//!
//! Storage is a chunked ring: a fixed directory of [`NUM_SEGMENTS`] segment
//! pointers, each segment holding [`SEGMENT_SIZE`] slots and allocated
//! lazily by the owner the first time an index lands in it. A fresh deque
//! therefore costs one small directory (no 64 KiB up-front buffer), and
//! occupancy can grow to [`CAPACITY`] = `SEGMENT_SIZE × NUM_SEGMENTS` slots
//! before [`WorkerDeque::push`] reports failure and `join` degrades to a
//! sequential call. Growth never reallocates concurrently-read memory: a
//! published segment stays at its address until the deque itself is
//! dropped, so thieves can dereference segment pointers without any
//! reclamation protocol.

use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

use crate::model;
use crate::pool::{JobHeader, JobRef};

/// Slots per segment. One segment covers any sane fork-join depth
/// (occupancy tracks recursion depth, not total task count), so the lazy
/// path beyond segment 0 is exercised only by pathological or injected
/// workloads.
const SEGMENT_SIZE: usize = 8192;
const SEGMENT_MASK: usize = SEGMENT_SIZE - 1;

/// Segment-directory length: total capacity is 64 × 8192 = 524 288 slots.
const NUM_SEGMENTS: usize = 64;

/// Total slots addressable before `push` reports failure.
const CAPACITY: usize = SEGMENT_SIZE * NUM_SEGMENTS;
const MASK: usize = CAPACITY - 1;

/// One lazily-allocated chunk of the ring.
struct Segment {
    slots: [AtomicPtr<JobHeader>; SEGMENT_SIZE],
}

impl Segment {
    fn alloc() -> *mut Segment {
        Box::into_raw(Box::new(Segment {
            slots: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }))
    }
}

/// A single worker's deque. `push`/`take` must only be called by the owning
/// worker thread; `steal` is safe from any thread.
pub(crate) struct WorkerDeque {
    /// Next slot thieves claim from (only ever incremented).
    top: AtomicIsize,
    /// Next slot the owner pushes to.
    bottom: AtomicIsize,
    /// Segment directory; null until the owner first touches the segment.
    segments: Box<[AtomicPtr<Segment>]>,
}

impl WorkerDeque {
    pub(crate) fn new() -> Self {
        let segments =
            (0..NUM_SEGMENTS).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect::<Vec<_>>();
        WorkerDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            segments: segments.into_boxed_slice(),
        }
    }

    /// Owner-only: the segment covering ring index `idx`, allocating it on
    /// first touch. Returns a reference valid for the deque's lifetime —
    /// segments are freed only in [`Drop`].
    fn owner_segment(&self, idx: usize) -> &Segment {
        let dir = &self.segments[idx / SEGMENT_SIZE];
        // ORDERING: Relaxed load — only the owner stores into the
        // directory, so it reads back its own last store. The Release
        // store publishes the freshly zeroed segment before the owner's
        // later Release store of `bottom` hands any of its slots to
        // thieves (see the slot-publication comment in `push`).
        let mut seg = dir.load(Ordering::Relaxed);
        if seg.is_null() {
            seg = Segment::alloc();
            // ORDERING: Release publish of the zeroed segment; pairs with
            // the Acquire directory load in `shared_segment` (reached by
            // thieves only after the Release `bottom` store in `push`, so
            // the zeroed slots are visible before any slot they read).
            dir.store(seg, Ordering::Release);
        }
        // SAFETY: `seg` came from `Segment::alloc` (via this call or an
        // earlier owner store) and is freed only in Drop, which takes
        // `&mut self` — no segment is freed while any `&self` method runs.
        unsafe { &*seg }
    }

    /// Any-thread: the already-published segment covering ring index
    /// `idx`. Callers must have observed (via an Acquire edge on `bottom`)
    /// a push into this segment, which guarantees the pointer is non-null.
    fn shared_segment(&self, idx: usize) -> &Segment {
        // ORDERING: Acquire pairs with the owner's Release store to the
        // `segments` directory slot in `owner_segment`; combined with the
        // Acquire load of `bottom` that proved this index in-range, the
        // segment contents (zeroed slots + the job pointer we are after)
        // are visible.
        let seg = self.segments[idx / SEGMENT_SIZE].load(Ordering::Acquire);
        debug_assert!(!seg.is_null(), "segment read before publication");
        // SAFETY: non-null per the caller contract above; segments are
        // freed only in Drop (`&mut self`), never while readers hold
        // `&self`.
        unsafe { &*seg }
    }

    /// Owner-only: pushes `job` at the bottom. Fails (returning the job)
    /// when the deque is full.
    pub(crate) fn push(&self, job: JobRef) -> Result<(), JobRef> {
        // ORDERING: Relaxed on bottom — the owner is the only thread that
        // writes bottom, so it reads back its own last store. Acquire on
        // top pairs with thieves' CAS releases: a slot observed free here
        // really has been vacated before we overwrite it.
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= CAPACITY as isize {
            return Err(job);
        }
        let idx = (b as usize) & MASK;
        let segment = self.owner_segment(idx);
        model::yield_point();
        // ORDERING: Relaxed slot store is safe because nothing reads this
        // slot until the Release store of bottom below publishes it; the
        // Release/Acquire edge on bottom carries both the slot write and
        // the segment-directory write (if this push allocated) to any
        // thief that observes the new bottom.
        segment.slots[idx & SEGMENT_MASK].store(job.as_ptr(), Ordering::Relaxed);
        model::yield_point();
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: pops the most recently pushed job (LIFO), racing thieves
    /// for the last remaining one.
    pub(crate) fn take(&self) -> Option<JobRef> {
        // ORDERING: Relaxed loads/stores of bottom in this function are
        // owner-private reads of our own writes; cross-thread agreement on
        // the reservation happens through the SeqCst fence + CAS below,
        // never through bottom alone.
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        model::yield_point();
        // Full barrier between the bottom decrement and the top read: the
        // crux of Chase–Lev (owner and thief must not both miss the other's
        // reservation of the final element).
        fence(Ordering::SeqCst);
        // ORDERING: Relaxed top load is ordered by the SeqCst fence above
        // (paired with the fence in steal): if a thief's CAS on top is
        // before our fence, we see its increment.
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let idx = (b as usize) & MASK;
            // ORDERING: Relaxed slot load — the owner itself stored this
            // slot (program order), no other thread writes it while
            // bottom reserves it; the segment exists because the owner's
            // own push allocated it.
            let job = self.owner_segment(idx).slots[idx & SEGMENT_MASK].load(Ordering::Relaxed);
            if t == b {
                model::yield_point();
                // Single element left: decide the race via CAS on top.
                // ORDERING: Relaxed on CAS failure — a lost race means the
                // thief owns the job; we discard `t` and restore bottom,
                // reading nothing the CAS was meant to publish.
                let cas = self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed);
                let won = cas.is_ok();
                // ORDERING: owner-private restore of bottom (see above).
                self.bottom.store(b + 1, Ordering::Relaxed);
                // SAFETY: the pointer was stored by our own push of a
                // still-pending job, and winning the CAS on top claimed it
                // uniquely — no thief can also return it.
                won.then(|| unsafe { JobRef::from_ptr(job) })
            } else {
                // SAFETY: t < b leaves at least one job below the thieves'
                // reach after our bottom reservation; the slot pointer is
                // ours by program order and claimed by no one else.
                Some(unsafe { JobRef::from_ptr(job) })
            }
        } else {
            // Already empty: restore bottom.
            // ORDERING: owner-private restore of bottom (see above).
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Any thread: claims the oldest job (FIFO). `None` on empty *or* on
    /// losing a race — callers are retry loops, so a failed CAS needs no
    /// distinct signal.
    pub(crate) fn steal(&self) -> Option<JobRef> {
        // ORDERING: Acquire on top pairs with other thieves' SeqCst CAS
        // increments so we start from a current index; the SeqCst fence
        // pairs with the fence in take (see there). Acquire on bottom
        // pairs with the owner's Release store in push, carrying the slot
        // write (and any segment allocation that preceded it) to us.
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        model::yield_point();
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let idx = (t as usize) & MASK;
            // ORDERING: Relaxed slot load — made visible by the Acquire
            // load of bottom above (the owner stored the slot before its
            // Release store of bottom); `shared_segment` Acquire-loads the
            // segment pointer published before that same edge.
            let job = self.shared_segment(idx).slots[idx & SEGMENT_MASK].load(Ordering::Relaxed);
            model::yield_point();
            // ORDERING: Relaxed on CAS failure — on a lost race we return
            // None and use nothing the winner published.
            if self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok() {
                // SAFETY: the slot pointer was published by the owner's
                // push (visible via the bottom Acquire edge) and our CAS
                // win on top transfers its unique ownership to us.
                return Some(unsafe { JobRef::from_ptr(job) });
            }
        }
        None
    }

    /// Cheap occupancy hint for the sleep protocol (racy by design).
    pub(crate) fn has_jobs(&self) -> bool {
        // ORDERING: advisory emptiness probe; a stale answer only delays a
        // wake-up or causes one spurious steal attempt, both harmless (the
        // parker re-checks for work under the sleep mutex before sleeping,
        // and every push is followed by an event-counted wake-up).
        self.bottom.load(Ordering::Relaxed) > self.top.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerDeque {
    fn drop(&mut self) {
        // Segments are freed here and ONLY here: `&mut self` proves no
        // owner or thief still holds a reference into them, which is the
        // whole reclamation story for the chunked ring.
        for dir in self.segments.iter_mut() {
            let seg = *dir.get_mut();
            if !seg.is_null() {
                // SAFETY: every non-null directory entry came from
                // `Segment::alloc` (Box::into_raw) and was never freed
                // before this point.
                unsafe { drop(Box::from_raw(seg)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as O};

    fn job_at(headers: &[JobHeader], i: usize) -> JobRef {
        // SAFETY: test-only no-op jobs — the header outlives the deque and
        // executing a noop JobRef reads nothing through the pointer.
        unsafe { JobRef::from_ptr(&headers[i] as *const JobHeader as *mut JobHeader) }
    }

    fn index_of(headers: &[JobHeader], job: JobRef) -> usize {
        (job.as_ptr() as usize - headers.as_ptr() as usize) / std::mem::size_of::<JobHeader>()
    }

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let headers: Vec<JobHeader> = (0..3).map(|_| JobHeader::noop()).collect();
        let deque = WorkerDeque::new();
        for i in 0..3 {
            deque.push(job_at(&headers, i)).ok().expect("capacity");
        }
        assert_eq!(index_of(&headers, deque.steal().expect("oldest")), 0);
        assert_eq!(index_of(&headers, deque.take().expect("newest")), 2);
        assert_eq!(index_of(&headers, deque.take().expect("last")), 1);
        assert!(deque.take().is_none());
        assert!(deque.steal().is_none());
    }

    /// Occupancy beyond one segment: pushes cross the first 8192-slot
    /// segment boundary (forcing a lazy allocation while thieves hold
    /// references into segment 0 via concurrent steals), then every job is
    /// drained and must be seen exactly once.
    #[test]
    fn grows_past_one_segment_with_concurrent_thief() {
        const JOBS: usize = SEGMENT_SIZE + 128;
        let headers: Vec<JobHeader> = (0..JOBS).map(|_| JobHeader::noop()).collect();
        let deque = WorkerDeque::new();
        let claims: Vec<AtomicUsize> = (0..JOBS).map(|_| AtomicUsize::new(0)).collect();
        let done = AtomicBool::new(false);
        let record = |job: JobRef| {
            claims[index_of(&headers, job)].fetch_add(1, O::SeqCst);
        };
        std::thread::scope(|s| {
            s.spawn(|| {
                while !done.load(O::SeqCst) {
                    if let Some(job) = deque.steal() {
                        record(job);
                    }
                }
            });
            for i in 0..JOBS {
                deque.push(job_at(&headers, i)).ok().expect("below total capacity");
            }
            while let Some(job) = deque.take() {
                record(job);
            }
            done.store(true, O::SeqCst);
        });
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.load(O::SeqCst), 1, "job {i} claimed {} times", c.load(O::SeqCst));
        }
    }

    /// The ring wraps: after draining `CAPACITY - 16` pushed-and-taken
    /// jobs in chunks, indices exceed `CAPACITY` and wrap onto segment 0
    /// again. Uses take-only draining so the test stays fast and
    /// deterministic.
    #[test]
    fn indices_wrap_around_total_capacity() {
        let headers: Vec<JobHeader> = (0..64).map(|_| JobHeader::noop()).collect();
        let deque = WorkerDeque::new();
        // Advance top/bottom past CAPACITY in lockstep batches.
        let batches = CAPACITY / headers.len() + 2;
        for _ in 0..batches {
            for i in 0..headers.len() {
                deque.push(job_at(&headers, i)).ok().expect("never full in lockstep");
            }
            for _ in 0..headers.len() {
                assert!(deque.take().is_some());
            }
        }
        assert!(deque.take().is_none());
        assert!(deque.steal().is_none());
    }

    /// A full deque reports failure instead of overwriting live slots.
    #[test]
    fn push_fails_at_total_capacity() {
        let headers: Vec<JobHeader> = vec![JobHeader::noop()];
        let deque = WorkerDeque::new();
        // Fill to CAPACITY with the same noop header (claims are not
        // tracked here; only the occupancy accounting matters).
        for _ in 0..CAPACITY {
            deque.push(job_at(&headers, 0)).ok().expect("below capacity");
        }
        assert!(deque.push(job_at(&headers, 0)).is_err(), "overfull push must fail");
        assert!(deque.take().is_some(), "draining reopens capacity");
        deque.push(job_at(&headers, 0)).ok().expect("one slot free again");
        // Drain fully so Drop sees a quiesced deque.
        while deque.take().is_some() {}
    }

    /// The single-hardest Chase–Lev schedule: one job left, the owner's
    /// `take` racing a thief's `steal` for it. Exactly one side may win,
    /// on every one of ≥1000 seeded schedules. (With the `schedule_fuzz`
    /// feature the paths are stretched by seeded preemption; without it
    /// this still exercises the real race, just with narrower windows.)
    #[test]
    fn fuzz_single_item_owner_vs_thief() {
        let headers: Vec<JobHeader> = vec![JobHeader::noop()];
        for seed in 0..1024u64 {
            model::seed_schedule(seed);
            let deque = WorkerDeque::new();
            deque.push(job_at(&headers, 0)).ok().expect("capacity");
            let (owner_won, thief_won) = std::thread::scope(|s| {
                let thief = s.spawn(|| deque.steal().is_some());
                let owner = deque.take().is_some();
                (owner, thief.join().expect("thief must not panic"))
            });
            assert!(
                owner_won ^ thief_won,
                "seed {seed}: single job claimed by owner={owner_won} thief={thief_won} \
                 — must be exactly one"
            );
            assert!(deque.take().is_none(), "seed {seed}: deque must be empty after the race");
            assert!(deque.steal().is_none(), "seed {seed}: deque must be empty after the race");
        }
    }

    /// Exactly-once delivery under sustained contention: the owner pushes
    /// a stream of jobs (popping some back LIFO) while two thieves drain
    /// FIFO. Every job must be claimed exactly once per seed.
    #[test]
    fn fuzz_every_job_claimed_exactly_once() {
        const JOBS: usize = 16;
        let headers: Vec<JobHeader> = (0..JOBS).map(|_| JobHeader::noop()).collect();
        for seed in 0..512u64 {
            model::seed_schedule(seed.wrapping_mul(0x9E37_79B9) + 1);
            let deque = WorkerDeque::new();
            let claims: Vec<AtomicUsize> = (0..JOBS).map(|_| AtomicUsize::new(0)).collect();
            let done = AtomicBool::new(false);
            let record = |job: JobRef| {
                claims[index_of(&headers, job)].fetch_add(1, O::SeqCst);
            };
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        while !done.load(O::SeqCst) {
                            if let Some(job) = deque.steal() {
                                record(job);
                            }
                        }
                    });
                }
                for i in 0..JOBS {
                    deque.push(job_at(&headers, i)).ok().expect("capacity");
                    if i % 3 == 0 {
                        if let Some(job) = deque.take() {
                            record(job);
                        }
                    }
                }
                while let Some(job) = deque.take() {
                    record(job);
                }
                done.store(true, O::SeqCst);
            });
            for (i, c) in claims.iter().enumerate() {
                assert_eq!(
                    c.load(O::SeqCst),
                    1,
                    "seed {seed}: job {i} claimed {} times, want exactly 1",
                    c.load(O::SeqCst)
                );
            }
        }
    }
}
