//! Chase–Lev work-stealing deque over [`JobRef`]s.
//!
//! One deque per worker: the owning worker pushes and pops jobs LIFO at the
//! *bottom* (hot in cache, matches fork-join recursion order), thieves claim
//! jobs FIFO at the *top* (the oldest — hence largest — pending subtree, the
//! property that makes stealing pay its synchronisation cost). The memory
//! orderings follow Lê, Pop, Cohen & Zappa Nardelli, *Correct and Efficient
//! Work-Stealing for Weak Memory Models* (PPoPP '13).
//!
//! The buffer is fixed-capacity: fork-join recursion keeps at most one
//! pending job per live `join` frame on the owner's stack, so the occupancy
//! is bounded by the recursion depth (logarithmic for every splitter in this
//! workspace). If a pathological caller ever fills it, [`WorkerDeque::push`]
//! reports failure and `join` degrades to a sequential call — correct, just
//! not parallel — instead of reallocating concurrently-read memory.

use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

use crate::pool::{JobHeader, JobRef};

/// Slots per deque. Far above any sane fork-join depth (occupancy tracks
/// recursion depth, not total task count).
const CAPACITY: usize = 8192;
const MASK: usize = CAPACITY - 1;

/// A single worker's deque. `push`/`take` must only be called by the owning
/// worker thread; `steal` is safe from any thread.
pub(crate) struct WorkerDeque {
    /// Next slot thieves claim from (only ever incremented).
    top: AtomicIsize,
    /// Next slot the owner pushes to.
    bottom: AtomicIsize,
    slots: Box<[AtomicPtr<JobHeader>]>,
}

impl WorkerDeque {
    pub(crate) fn new() -> Self {
        let slots = (0..CAPACITY).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect::<Vec<_>>();
        WorkerDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Owner-only: pushes `job` at the bottom. Fails (returning the job)
    /// when the deque is full.
    pub(crate) fn push(&self, job: JobRef) -> Result<(), JobRef> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= CAPACITY as isize {
            return Err(job);
        }
        self.slots[(b as usize) & MASK].store(job.as_ptr(), Ordering::Relaxed);
        // Release: the slot write above must be visible to a thief that
        // acquires this bottom value.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: pops the most recently pushed job (LIFO), racing thieves
    /// for the last remaining one.
    pub(crate) fn take(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // Full barrier between the bottom decrement and the top read: the
        // crux of Chase–Lev (owner and thief must not both miss the other's
        // reservation of the final element).
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let job = self.slots[(b as usize) & MASK].load(Ordering::Relaxed);
            if t == b {
                // Single element left: decide the race via CAS on top.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then(|| unsafe { JobRef::from_ptr(job) })
            } else {
                Some(unsafe { JobRef::from_ptr(job) })
            }
        } else {
            // Already empty: restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Any thread: claims the oldest job (FIFO). `None` on empty *or* on
    /// losing a race — callers are retry loops, so a failed CAS needs no
    /// distinct signal.
    pub(crate) fn steal(&self) -> Option<JobRef> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let job = self.slots[(t as usize) & MASK].load(Ordering::Relaxed);
            if self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok() {
                return Some(unsafe { JobRef::from_ptr(job) });
            }
        }
        None
    }

    /// Cheap occupancy hint for the sleep protocol (racy by design).
    pub(crate) fn has_jobs(&self) -> bool {
        self.bottom.load(Ordering::Relaxed) > self.top.load(Ordering::Relaxed)
    }
}
