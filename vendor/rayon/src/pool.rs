//! The persistent work-stealing pool behind [`crate::join`] and every
//! parallel-iterator terminal operation.
//!
//! # Architecture
//!
//! * **Registry** — one per process, created lazily on first use and leaked
//!   (workers need a `'static` handle). Holds one [`WorkerDeque`] per
//!   worker, a mutex-guarded *injector* for jobs submitted from outside the
//!   pool, and the sleep/latch condition variables.
//! * **Workers** — `num_threads()` OS threads spawned once at registry
//!   creation. Each loops: pop own deque (LIFO) → steal from a sibling or
//!   the injector (FIFO) → park. Parking is event-counted and
//!   timeout-free: publication bumps an epoch counter and a worker only
//!   commits to sleeping when the epoch it sampled is still current under
//!   the sleep mutex, so the first job after an idle period wakes a
//!   worker immediately instead of after a polling interval.
//! * **Jobs** — stack-allocated [`StackJob`]s referenced by a type-erased
//!   one-word [`JobRef`]. No allocation per `join`; the job lives in the
//!   joining caller's frame, which is pinned until the job's latch is set.
//! * **`join(a, b)`** — publishes `b` (own deque for workers, injector for
//!   external callers), runs `a` inline, then *resolves* `b`: pop it back
//!   and run it inline if nobody claimed it, otherwise execute other
//!   pending jobs until `b`'s latch is set. Resolution lives in a drop
//!   guard, so a panic inside `a` still waits for `b` before unwinding —
//!   `b` borrows the very stack frame the panic would otherwise free, and
//!   the pool stays fully usable after the panic (the regression the old
//!   scoped-thread stand-in failed: its `ACTIVE_JOINS` budget leaked on
//!   panic and silently serialised every later join).
//!
//! Thread count: `RS_NUM_THREADS` (read once, at pool creation) when set to
//! a positive integer, else `std::thread::available_parallelism()`. With one
//! thread the pool spawns no workers and every operation runs sequentially
//! on the caller.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use crate::deque::WorkerDeque;

// ---- jobs ---------------------------------------------------------------

/// First field of every job: the type-erased entry point. Jobs are
/// `#[repr(C)]` with the header first, so a header pointer is the job
/// pointer.
pub(crate) struct JobHeader {
    execute: unsafe fn(*const JobHeader),
}

#[cfg(test)]
impl JobHeader {
    /// Test-only: a header whose entry point does nothing, letting deque
    /// tests fabricate claimable jobs without the `StackJob` machinery.
    pub(crate) fn noop() -> JobHeader {
        unsafe fn nop(_ptr: *const JobHeader) {}
        JobHeader { execute: nop }
    }
}

/// One-word type-erased handle to a pending job.
///
/// Safety contract: the referenced job outlives the handle (the submitting
/// frame blocks on the job's latch before returning) and `execute` is
/// called exactly once (queue pops and injector removal transfer unique
/// ownership).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct JobRef {
    ptr: *const JobHeader,
}

// SAFETY: a JobRef is a plain pointer whose pointee is pinned until its
// latch is set (the submitting frame blocks on it); ownership-transfer
// discipline (executed exactly once, by whichever thread claims it) is
// exactly what the type exists to carry across threads.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// `header` must point at a live job whose frame stays pinned until
    /// the job executes (see the type-level contract above).
    unsafe fn new(header: *const JobHeader) -> JobRef {
        JobRef { ptr: header }
    }

    pub(crate) fn as_ptr(self) -> *mut JobHeader {
        self.ptr.cast_mut()
    }

    /// # Safety
    /// `ptr` must have come from [`JobRef::as_ptr`] on a still-pending job.
    pub(crate) unsafe fn from_ptr(ptr: *mut JobHeader) -> JobRef {
        JobRef { ptr }
    }

    /// # Safety
    /// Must be called at most once per job, while the job's frame is
    /// still pinned (the claim that produced this `JobRef` — deque pop,
    /// steal, or injector removal — is what grants that uniqueness).
    unsafe fn execute(self) {
        // SAFETY: per this function's contract the pointee is alive, and
        // `execute` is the type-erased entry point installed at
        // construction for exactly this header type.
        ((*self.ptr).execute)(self.ptr)
    }
}

/// A `FnOnce` job allocated on the submitting caller's stack. The closure's
/// panic is caught into `result` and rethrown by the joiner, never across
/// the pool.
#[repr(C)]
struct StackJob<F, R> {
    header: JobHeader,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F) -> Self {
        StackJob {
            header: JobHeader { execute: Self::execute_erased },
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
        }
    }

    /// # Safety
    /// The returned ref must be executed at most once, before `self` drops.
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(&self.header)
    }

    /// # Safety
    /// `ptr` must be the header of a live `StackJob<F, R>` that has not
    /// executed yet (headers are `#[repr(C)]`-first, so the header
    /// pointer is the job pointer).
    unsafe fn execute_erased(ptr: *const JobHeader) {
        // SAFETY: the cast inverts as_job_ref's erasure (see contract
        // above); the frame is pinned until the latch below is set.
        let this = &*ptr.cast::<Self>();
        let func = (*this.func.get()).take().expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        *this.result.get() = Some(result);
        // Last touch of the job: after this store the joiner may free it.
        this.latch.set(global());
    }

    /// Reclaims the closure for inline execution (deque-full fallback).
    fn into_func(self) -> F {
        self.func.into_inner().expect("job already executed")
    }

    /// Only valid once the latch is set.
    fn into_result(self) -> std::thread::Result<R> {
        self.result.into_inner().expect("join finished without a result")
    }
}

/// Runs a claimed job. Never unwinds: the job's own `catch_unwind` confines
/// panics to its `result` slot.
pub(crate) fn execute(job: JobRef) {
    // SAFETY: every caller holds a freshly-claimed JobRef (deque pop,
    // steal, or injector removal — each transfers unique ownership), so
    // the at-most-once / frame-pinned contract of JobRef::execute holds.
    unsafe { job.execute() }
}

// ---- latch --------------------------------------------------------------

/// Set-once completion flag. Blocking waiters share the registry-wide
/// condvar, so setting a latch never touches the (stack-allocated, possibly
/// about-to-be-freed) latch after the store — only registry statics.
struct Latch {
    done: AtomicBool,
}

impl Latch {
    fn new() -> Self {
        Latch { done: AtomicBool::new(false) }
    }

    #[inline]
    fn probe(&self) -> bool {
        // ORDERING: Acquire pairs with the Release in set — a joiner that
        // observes `done` also observes the job's result write that
        // happened before it (this edge is what makes into_result sound).
        self.done.load(Ordering::Acquire)
    }

    fn set(&self, registry: &Registry) {
        // ORDERING: Release publishes the result slot written just before
        // the latch (see execute_erased) to any Acquire probe.
        self.done.store(true, Ordering::Release);
        registry.notify_latch_waiters();
    }
}

// ---- registry -----------------------------------------------------------

thread_local! {
    /// This thread's worker index, or `usize::MAX` for external threads.
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn current_worker() -> Option<usize> {
    let i = WORKER_INDEX.with(Cell::get);
    (i != usize::MAX).then_some(i)
}

pub(crate) struct Registry {
    deques: Vec<WorkerDeque>,
    injector: Mutex<VecDeque<JobRef>>,
    num_threads: usize,
    /// Rotates steal start positions so thieves spread over victims.
    steal_seed: AtomicUsize,
    /// Idle-worker parking. `sleepers` gates the notify fast path;
    /// `sleep_epoch` is the event counter that makes the parking
    /// timeout-free: every job publication bumps it, and a worker only
    /// commits to sleeping if the epoch it sampled before its last work
    /// check is still current under the mutex.
    sleepers: AtomicUsize,
    sleep_epoch: AtomicUsize,
    sleep_mutex: Mutex<()>,
    sleep_cond: Condvar,
    /// Joiners blocked on a stolen job's latch; same event-counted
    /// protocol. Bumped by every latch set *and* every job publication
    /// (so a parked joiner wakes to help with fresh work).
    latch_waiters: AtomicUsize,
    latch_epoch: AtomicUsize,
    latch_mutex: Mutex<()>,
    latch_cond: Condvar,
}

static REGISTRY: OnceLock<&'static Registry> = OnceLock::new();

/// The process-wide pool, spawning its workers on first use.
pub(crate) fn global() -> &'static Registry {
    REGISTRY.get_or_init(|| {
        let num_threads = configured_threads();
        let workers = if num_threads > 1 { num_threads } else { 0 };
        let registry: &'static Registry = Box::leak(Box::new(Registry {
            deques: (0..workers).map(|_| WorkerDeque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            num_threads,
            steal_seed: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            sleep_epoch: AtomicUsize::new(0),
            sleep_mutex: Mutex::new(()),
            sleep_cond: Condvar::new(),
            latch_waiters: AtomicUsize::new(0),
            latch_epoch: AtomicUsize::new(0),
            latch_mutex: Mutex::new(()),
            latch_cond: Condvar::new(),
        }));
        for index in 0..workers {
            std::thread::Builder::new()
                .name(format!("rs-worker-{index}"))
                .spawn(move || worker_main(registry, index))
                .expect("failed to spawn pool worker");
        }
        registry
    })
}

/// `RS_NUM_THREADS` (positive integer) or the machine's parallelism.
fn configured_threads() -> usize {
    match std::env::var("RS_NUM_THREADS").ok().and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

impl Registry {
    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Claims any pending job: injector first (keeps external submissions
    /// flowing), then a rotating sweep of the worker deques.
    fn steal(&self, exclude: Option<usize>) -> Option<JobRef> {
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        if n == 0 {
            return None;
        }
        // ORDERING: the rotation counter only spreads thieves over
        // victims; no data is published through it and any value is a
        // valid starting point.
        let start = self.steal_seed.fetch_add(1, Ordering::Relaxed) % n;
        for k in 0..n {
            let i = (start + k) % n;
            if Some(i) == exclude {
                continue;
            }
            if let Some(job) = self.deques[i].steal() {
                return Some(job);
            }
        }
        None
    }

    fn inject(&self, job: JobRef) {
        self.injector.lock().unwrap().push_back(job);
        self.notify_new_job();
    }

    /// Removes a specific injected job, if no worker claimed it yet.
    fn take_injected(&self, job: JobRef) -> bool {
        let mut queue = self.injector.lock().unwrap();
        match queue.iter().position(|&j| j == job) {
            Some(i) => {
                queue.remove(i);
                true
            }
            None => false,
        }
    }

    fn has_visible_work(&self) -> bool {
        self.deques.iter().any(WorkerDeque::has_jobs) || !self.injector.lock().unwrap().is_empty()
    }

    /// Wakes parked workers after publishing a job — the *only* wake-up
    /// mechanism now that parking is event-counted and timeout-free, so
    /// every publication path must route through here. The epoch bump
    /// comes first: a worker that sampled the old epoch before its final
    /// work check will refuse to sleep once it re-reads the counter under
    /// the mutex, and a worker already past that re-check has necessarily
    /// registered in `sleepers` (it increments before taking the mutex),
    /// so the notify branch below reaches it. The lock acquire/release
    /// serialises us against a worker between its re-check and its
    /// `wait`, which holds the mutex for that whole window.
    fn notify_new_job(&self) {
        self.sleep_epoch.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(self.sleep_mutex.lock().unwrap());
            self.sleep_cond.notify_all();
        }
        // Parked joiners can help with the new job too — without this a
        // joiner whose latch is slow to resolve would idle next to
        // claimable work (the old bounded timeout used to paper over
        // this by polling).
        self.notify_latch_waiters();
    }

    /// Same event-counted protocol as [`Registry::notify_new_job`], for
    /// the latch condvar: bump first, then notify if anyone registered.
    fn notify_latch_waiters(&self) {
        self.latch_epoch.fetch_add(1, Ordering::SeqCst);
        if self.latch_waiters.load(Ordering::SeqCst) > 0 {
            drop(self.latch_mutex.lock().unwrap());
            self.latch_cond.notify_all();
        }
    }
}

fn worker_main(registry: &'static Registry, index: usize) {
    WORKER_INDEX.with(|c| c.set(index));
    loop {
        if let Some(job) = registry.deques[index].take().or_else(|| registry.steal(Some(index))) {
            execute(job);
            continue;
        }
        // Idle: event-counted parking, no timeout. Sample the epoch,
        // register as sleeping, re-check for work (a publisher that
        // missed our registration races the check), then commit to the
        // sleep only if the epoch is unchanged under the mutex — any
        // publication between the sample and the re-check bumped it, and
        // any publication after the re-check sees our `sleepers`
        // registration and notifies (see `notify_new_job`).
        let epoch = registry.sleep_epoch.load(Ordering::SeqCst);
        registry.sleepers.fetch_add(1, Ordering::SeqCst);
        if registry.has_visible_work() {
            registry.sleepers.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let guard = registry.sleep_mutex.lock().unwrap();
        if registry.sleep_epoch.load(Ordering::SeqCst) == epoch && !registry.has_visible_work() {
            drop(registry.sleep_cond.wait(guard).unwrap());
        } else {
            drop(guard);
        }
        registry.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Blocks until `latch` is set, executing any claimable pool work while
/// waiting (so a joiner whose job was stolen keeps the pool saturated and
/// can never deadlock it).
fn wait_while_helping(registry: &'static Registry, latch: &Latch, worker: Option<usize>) {
    while !latch.probe() {
        if let Some(job) = registry.steal(worker) {
            execute(job);
            continue;
        }
        // Event-counted park (see `worker_main` for the race argument):
        // the latch epoch is bumped by every latch set and every job
        // publication, so a committed sleeper is woken both when its own
        // latch resolves and when fresh work appears to help with.
        let epoch = registry.latch_epoch.load(Ordering::SeqCst);
        registry.latch_waiters.fetch_add(1, Ordering::SeqCst);
        if !latch.probe() {
            let guard = registry.latch_mutex.lock().unwrap();
            if registry.latch_epoch.load(Ordering::SeqCst) == epoch && !latch.probe() {
                drop(registry.latch_cond.wait(guard).unwrap());
            }
        }
        registry.latch_waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---- join ---------------------------------------------------------------

#[derive(Clone, Copy)]
enum Submitted {
    /// Pushed on this worker's own deque.
    Local(usize),
    /// Pushed on the injector by an external (non-worker) thread.
    Injected,
}

/// Ensures the published `b` job is executed before the `join` frame is
/// left — on the normal path *and* when `a` panics. The job borrows this
/// very stack frame, so unwinding past it with the job pending would be a
/// use-after-free; the guard converts that hazard into "wait, helping with
/// other work". This is also what keeps the pool usable after a panic:
/// nothing is leaked, no budget to restore.
struct JoinGuard<'a> {
    registry: &'static Registry,
    job: JobRef,
    latch: &'a Latch,
    submitted: Submitted,
}

impl Drop for JoinGuard<'_> {
    fn drop(&mut self) {
        if self.latch.probe() {
            return;
        }
        match self.submitted {
            Submitted::Local(worker) => {
                // LIFO pop: the top is our job unless a thief claimed it.
                // Anything else popped is an ancestor frame's still-pending
                // job — executing it inline is safe (its owner waits on its
                // latch) and productive.
                while !self.latch.probe() {
                    match self.registry.deques[worker].take() {
                        Some(popped) => {
                            let ours = popped == self.job;
                            execute(popped);
                            if ours {
                                return;
                            }
                        }
                        None => {
                            wait_while_helping(self.registry, self.latch, Some(worker));
                            return;
                        }
                    }
                }
            }
            Submitted::Injected => {
                if self.registry.take_injected(self.job) {
                    execute(self.job);
                } else {
                    wait_while_helping(self.registry, self.latch, None);
                }
            }
        }
    }
}

/// Fork-join on the pool; see [`crate::join`] for the public contract.
pub(crate) fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = global();
    if registry.num_threads <= 1 {
        return (a(), b());
    }
    let job_b = StackJob::new(b);
    // SAFETY: the JoinGuard below pins this frame until job_b executed.
    let job_ref = unsafe { job_b.as_job_ref() };
    let submitted = match current_worker() {
        Some(worker) => match registry.deques[worker].push(job_ref) {
            Ok(()) => {
                registry.notify_new_job();
                Submitted::Local(worker)
            }
            Err(_) => {
                // Deque full (pathological recursion depth): run in order,
                // sequentially.
                let ra = a();
                return (ra, job_b.into_func()());
            }
        },
        None => {
            registry.inject(job_ref);
            Submitted::Injected
        }
    };
    let ra = {
        let _guard = JoinGuard { registry, job: job_ref, latch: &job_b.latch, submitted };
        a()
        // _guard drops here: b is executed/awaited whether or not `a`
        // unwound, after which reading its result (or freeing the frame
        // during an unwind) is sound.
    };
    match job_b.into_result() {
        Ok(rb) => (ra, rb),
        Err(payload) => panic::resume_unwind(payload),
    }
}
