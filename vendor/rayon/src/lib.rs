//! Offline stand-in for `rayon`, backed by a persistent work-stealing pool.
//!
//! The build environment cannot reach the crates registry, so this in-tree
//! crate implements the exact subset of rayon's API the workspace uses —
//! with real work-stealing parallelism, not a sequential fake and not
//! per-call scoped threads:
//!
//! * [`pool`] (internal) — the process-wide pool: workers spawned once on
//!   first use and parked when idle, one Chase–Lev deque per worker plus a
//!   global injector for external submissions, stack-allocated jobs, and a
//!   drop-guarded `join` that keeps the pool usable across panics.
//! * [`deque`] (internal) — the Chase–Lev deque (owner LIFO, thieves FIFO).
//! * [`model`] — seeded schedule-fuzzing preemption points (`yield_point`)
//!   compiled into the lock-free paths under `--features schedule_fuzz`
//!   and to nothing otherwise; see the "Correctness tooling" README
//!   section.
//! * [`join`] — fork-join task splitting on the pool: no thread is spawned
//!   per call, the forked closure is published to the deque and usually
//!   popped right back by its own submitter.
//! * [`prelude`] — `par_iter` / `into_par_iter` over slices, vectors and
//!   integer ranges, with `map`, `map_init`, `zip`, `fold` + `reduce`,
//!   `for_each`, `min`, `sum`, `collect`, `par_chunks` / `par_chunks_mut`,
//!   and a parallel `par_sort_unstable` — every terminal operation splits
//!   recursively via [`join`], so the whole iterator surface rides the same
//!   pool.
//! * [`current_num_threads`] — the pool size. Override with the
//!   `RS_NUM_THREADS` environment variable (read once, at pool creation);
//!   `RS_NUM_THREADS=1` forces fully sequential execution.
//!
//! Semantics match rayon where the workspace depends on them: terminal
//! operations preserve item order (`collect` is deterministic), `fold`
//! produces one accumulator per contiguous chunk, every closure runs under
//! the same `Sync`/`Send` obligations real rayon imposes, and a panic in
//! any parallel closure is confined to its job and rethrown exactly once on
//! the joining caller — later operations stay parallel (the old
//! scoped-thread stand-in leaked its thread budget on panic and silently
//! serialised everything after).

mod deque;
pub mod iter;
pub mod model;
mod pool;

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice, ParallelSliceMut,
    };
}

/// Number of pool threads (`RS_NUM_THREADS` or the machine's parallelism).
pub fn current_num_threads() -> usize {
    pool::global().num_threads()
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// `b` is published to the work-stealing pool while the calling thread runs
/// `a`; if no other worker claims `b`, the caller pops it back and runs it
/// inline — so the sequential overhead is one deque push/pop, not a thread
/// spawn. Panics in either closure propagate to the caller after *both*
/// closures have finished (never across the pool), and the pool remains
/// fully parallel afterwards.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join(a, b)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn deep_recursive_join_terminates() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), (0..100_000u64).sum());
    }

    /// Returns true iff both sides of a `join` were in flight at once:
    /// each side announces itself, then waits (bounded) for the other.
    /// A sequential fallback can never satisfy both sides.
    fn join_runs_concurrently() -> bool {
        let started = AtomicUsize::new(0);
        let rendezvous = || {
            started.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while started.load(Ordering::SeqCst) < 2 {
                if std::time::Instant::now() > deadline {
                    return false;
                }
                std::thread::yield_now();
            }
            true
        };
        let (a, b) = join(rendezvous, rendezvous);
        a && b
    }

    /// The headline regression of the pool rewrite: the scoped-thread
    /// stand-in decremented its `ACTIVE_JOINS` budget only on the
    /// non-panicking path, so one caught panic inside a join closure
    /// degraded every later join to sequential for the process lifetime.
    /// The pool restores itself by construction (drop guards); prove it by
    /// panicking through joins repeatedly and then demonstrating actual
    /// concurrency.
    #[test]
    fn joins_stay_parallel_after_caught_panic() {
        for i in 0..8 {
            let caught = std::panic::catch_unwind(|| {
                if i % 2 == 0 {
                    join(|| 1, || panic!("forked side panics"))
                } else {
                    join(|| panic!("inline side panics"), || 2)
                }
            });
            assert!(caught.is_err(), "panic must propagate out of join");
        }
        if current_num_threads() >= 2 {
            assert!(join_runs_concurrently(), "join degraded to sequential after a caught panic");
        }
        // And the iterator surface still works (and stays correct) too.
        let v: Vec<u64> = (0u64..50_000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v, (0u64..50_000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn nested_join_panic_propagates_once() {
        let caught = std::panic::catch_unwind(|| {
            join(
                || join(|| 1, || panic!("inner fork panics")),
                || (0u64..10_000).into_par_iter().map(|i| i).sum::<u64>(),
            )
        });
        assert!(caught.is_err());
        let ok: u64 = (0u64..1_000).into_par_iter().map(|i| i).sum();
        assert_eq!(ok, 499_500);
    }

    #[test]
    fn range_map_collect_ordered() {
        let v: Vec<u64> = (0u64..50_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0u64..50_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let src: Vec<String> = (0..10_000).map(|i| i.to_string()).collect();
        let out: Vec<usize> = src.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 10_000);
        assert_eq!(out[9_999], 4);
    }

    #[test]
    fn slice_par_iter_and_sum() {
        let v: Vec<usize> = (0..100_000).collect();
        let s: usize = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 100_000 * 99_999 / 2);
    }

    #[test]
    fn fold_reduce_matches_sequential() {
        let total: Vec<u32> = (0u32..10_000)
            .into_par_iter()
            .fold(Vec::new, |mut acc, x| {
                if x % 3 == 0 {
                    acc.push(x);
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(total, (0u32..10_000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn zip_and_for_each_mutate_disjoint() {
        let mut data = vec![0u64; 4096];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(512).collect();
        let offsets: Vec<u64> = (0..8).collect();
        chunks.into_par_iter().zip(offsets.par_iter()).for_each(|(chunk, &off)| {
            for x in chunk {
                *x = off;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[4095], 7);
        assert_eq!(data[512], 1);
    }

    #[test]
    fn map_init_runs_once_per_chunk() {
        let inits = AtomicUsize::new(0);
        let out: Vec<u32> = (0u32..10_000)
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u32
                },
                |scratch, x| {
                    *scratch += 1;
                    x
                },
            )
            .collect();
        assert_eq!(out.len(), 10_000);
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=10_000).contains(&n), "init per chunk, got {n}");
    }

    #[test]
    fn with_min_len_parallelizes_tiny_coarse_batches() {
        // 4 items is below the default 2×threads cutover on most machines;
        // with_min_len(1) must still split the work across threads.
        let seen = std::sync::Mutex::new(std::collections::HashSet::new());
        let out: Vec<u32> = (0u32..4)
            .into_par_iter()
            .with_min_len(1)
            .map(|i| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(20));
                i * 10
            })
            .collect();
        assert_eq!(out, vec![0, 10, 20, 30]);
        if current_num_threads() >= 2 {
            assert!(
                seen.lock().unwrap().len() >= 2,
                "4 sleeping items with min_len(1) must use more than one thread"
            );
        }
    }

    #[test]
    fn min_matches() {
        let v: Vec<u64> = (0..10_000u64).map(|i| (i * 2_654_435_761) % 1_000_003).collect();
        assert_eq!(v.par_iter().map(|&x| x).min(), v.iter().copied().min());
        let empty: Vec<u64> = Vec::new();
        assert_eq!(empty.par_iter().map(|&x| x).min(), None);
    }

    #[test]
    fn par_sort_unstable_sorts() {
        let mut v: Vec<u64> = (0..200_000u64).map(|i| (i * 48_271) % 65_537).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, expect);
    }

    #[test]
    fn par_sort_unstable_adversarial_shapes() {
        // Sorted, reversed, constant, and near-sorted inputs exercise the
        // pivot selection; correctness must hold on all of them.
        let n = 60_000u64;
        let shapes: Vec<Vec<u64>> = vec![
            (0..n).collect(),
            (0..n).rev().collect(),
            vec![7; n as usize],
            (0..n).map(|i| if i % 1000 == 0 { n - i } else { i }).collect(),
        ];
        for mut v in shapes {
            let mut expect = v.clone();
            expect.sort_unstable();
            v.par_sort_unstable();
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn par_chunks_match_sequential() {
        let data: Vec<u64> = (0..100_000).collect();
        let sums: Vec<u64> = data.par_chunks(1024).map(|c| c.iter().sum()).collect();
        let expect: Vec<u64> = data.chunks(1024).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn par_chunks_mut_disjoint_writes() {
        let mut data = vec![0u64; 100_000];
        data.par_chunks_mut(777).zip((0u64..129).into_par_iter()).for_each(|(chunk, i)| {
            for x in chunk {
                *x = i;
            }
        });
        for (j, &x) in data.iter().enumerate() {
            assert_eq!(x, (j / 777) as u64);
        }
    }
}
