//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach the crates registry, so this in-tree
//! crate implements the exact subset of rayon's API the workspace uses —
//! with *real* data parallelism on `std::thread::scope`, not a sequential
//! fake:
//!
//! * [`prelude`] — `par_iter` / `into_par_iter` over slices, vectors and
//!   integer ranges, with `map`, `map_init`, `zip`, `fold` + `reduce`,
//!   `for_each`, `min`, `sum`, `collect`, and `par_sort_unstable`.
//! * [`join`] — fork-join with a global concurrency cap so recursive joins
//!   (the treap's union/difference) cannot explode the thread count.
//! * [`current_num_threads`] — the worker count terminal operations use.
//!
//! Semantics match rayon where the workspace depends on them: terminal
//! operations preserve item order (`collect` is deterministic), `fold`
//! produces one accumulator per contiguous chunk, and every closure runs
//! under the same `Sync`/`Send` obligations real rayon imposes. Scheduling
//! differs (fixed chunking instead of work stealing), which is invisible to
//! deterministic algorithms.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod iter;

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSliceMut,
    };
}

/// Number of worker threads terminal operations may use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Live thread budget for [`join`]: once this many extra threads are
/// running, further joins degrade to sequential calls (correct, just not
/// parallel), bounding recursion fan-out.
static ACTIVE_JOINS: AtomicUsize = AtomicUsize::new(0);

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = current_num_threads();
    if ACTIVE_JOINS.fetch_add(1, Ordering::Relaxed) < budget {
        let out = std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("join closure panicked"))
        });
        ACTIVE_JOINS.fetch_sub(1, Ordering::Relaxed);
        out
    } else {
        ACTIVE_JOINS.fetch_sub(1, Ordering::Relaxed);
        (a(), b())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn deep_recursive_join_terminates() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), (0..100_000u64).sum());
    }

    #[test]
    fn range_map_collect_ordered() {
        let v: Vec<u64> = (0u64..50_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0u64..50_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let src: Vec<String> = (0..10_000).map(|i| i.to_string()).collect();
        let out: Vec<usize> = src.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 10_000);
        assert_eq!(out[9_999], 4);
    }

    #[test]
    fn slice_par_iter_and_sum() {
        let v: Vec<usize> = (0..100_000).collect();
        let s: usize = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 100_000 * 99_999 / 2);
    }

    #[test]
    fn fold_reduce_matches_sequential() {
        let total: Vec<u32> = (0u32..10_000)
            .into_par_iter()
            .fold(Vec::new, |mut acc, x| {
                if x % 3 == 0 {
                    acc.push(x);
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(total, (0u32..10_000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn zip_and_for_each_mutate_disjoint() {
        let mut data = vec![0u64; 4096];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(512).collect();
        let offsets: Vec<u64> = (0..8).collect();
        chunks.into_par_iter().zip(offsets.par_iter()).for_each(|(chunk, &off)| {
            for x in chunk {
                *x = off;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[4095], 7);
        assert_eq!(data[512], 1);
    }

    #[test]
    fn map_init_runs_once_per_chunk() {
        let inits = AtomicUsize::new(0);
        let out: Vec<u32> = (0u32..10_000)
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u32
                },
                |scratch, x| {
                    *scratch += 1;
                    x
                },
            )
            .collect();
        assert_eq!(out.len(), 10_000);
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=10_000).contains(&n), "init per chunk, got {n}");
    }

    #[test]
    fn with_min_len_parallelizes_tiny_coarse_batches() {
        // 4 items is below the default 2×threads cutover on most machines;
        // with_min_len(1) must still split the work across threads.
        let seen = std::sync::Mutex::new(std::collections::HashSet::new());
        let out: Vec<u32> = (0u32..4)
            .into_par_iter()
            .with_min_len(1)
            .map(|i| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(20));
                i * 10
            })
            .collect();
        assert_eq!(out, vec![0, 10, 20, 30]);
        if current_num_threads() >= 2 {
            assert!(
                seen.lock().unwrap().len() >= 2,
                "4 sleeping items with min_len(1) must use more than one thread"
            );
        }
    }

    #[test]
    fn min_matches() {
        let v: Vec<u64> = (0..10_000u64).map(|i| (i * 2_654_435_761) % 1_000_003).collect();
        assert_eq!(v.par_iter().map(|&x| x).min(), v.iter().copied().min());
        let empty: Vec<u64> = Vec::new();
        assert_eq!(empty.par_iter().map(|&x| x).min(), None);
    }

    #[test]
    fn par_sort_unstable_sorts() {
        let mut v: Vec<u64> = (0..50_000u64).map(|i| (i * 48_271) % 65_537).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, expect);
    }
}
