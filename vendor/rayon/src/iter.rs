//! The parallel-iterator subset.
//!
//! Every source is *indexed*: it knows its length and can evaluate any
//! contiguous sub-range of items independently. Terminal operations split
//! `0..len` into chunks and evaluate them with recursive [`crate::join`]
//! splitting on the persistent work-stealing pool — each half of a split is
//! a pool task a thief can claim, and per-chunk results are written into
//! disjoint slots of a preallocated buffer, preserving rayon's
//! deterministic output order with no locks and no per-call thread spawns.

use std::marker::PhantomData;
use std::ops::Range;

use crate::current_num_threads;

/// An indexed parallel iterator: evaluate items `lo..hi` into a sink.
pub trait ParallelIterator: Sized + Send + Sync {
    type Item: Send;

    /// Number of items.
    fn pi_len(&self) -> usize;

    /// Evaluates items `lo..hi` in index order into `sink`.
    ///
    /// # Safety
    ///
    /// The caller must evaluate each index at most once across all
    /// `pi_eval` calls on one iterator, with `hi <= pi_len()`. Sources
    /// depend on this for soundness, not just correctness: `VecParIter`
    /// moves items out by raw-pointer read (a repeated index would double
    /// an owned value) and `ChunksMutParIter` hands out `&mut` slices (a
    /// repeated index would alias them). Only terminal operations — which
    /// split `0..pi_len()` into disjoint ranges — may call this.
    unsafe fn pi_eval(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(Self::Item));

    /// Splitting granularity requested via [`ParallelIterator::with_min_len`]
    /// (`None` = use the driver's default heuristic). Adapters forward it.
    fn pi_min_len(&self) -> Option<usize> {
        None
    }

    // ---- adapters -------------------------------------------------------

    /// Sets the minimum items per chunk. The driver's default heuristic
    /// only goes parallel for `2 * threads` or more items — right for
    /// fine-grained items, wrong for coarse ones (e.g. one whole SSSP
    /// solve per item); `with_min_len(1)` forces parallelism from 2 items.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min: min.max(1) }
    }

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// `map` with one scratch value per evaluation chunk.
    fn map_init<T, R, INIT, F>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        R: Send,
        INIT: Fn() -> T + Sync + Send,
        F: Fn(&mut T, Self::Item) -> R + Sync + Send,
    {
        MapInit { base: self, init, f }
    }

    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// One accumulator per chunk; combine with [`Fold::reduce`].
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Sync + Send,
        F: Fn(T, Self::Item) -> T + Sync + Send,
    {
        Fold { base: self, identity, fold_op }
    }

    // ---- terminal operations -------------------------------------------

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        // SAFETY: run_chunks hands each chunk to `work` exactly once, and
        // chunks are disjoint and within 0..pi_len().
        run_chunks(&self, |iter, lo, hi| unsafe { iter.pi_eval(lo, hi, &mut |item| f(item)) });
    }

    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_chunks(&self, |iter, lo, hi| {
            let mut best: Option<Self::Item> = None;
            // SAFETY: disjoint in-bounds chunks, each evaluated once.
            unsafe {
                iter.pi_eval(lo, hi, &mut |item| {
                    if best.as_ref().is_none_or(|b| item < *b) {
                        best = Some(item);
                    }
                });
            }
            best
        })
        .into_iter()
        .flatten()
        .min()
    }

    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        run_chunks(&self, |iter, lo, hi| {
            let mut items = Vec::with_capacity(hi - lo);
            // SAFETY: disjoint in-bounds chunks, each evaluated once.
            unsafe { iter.pi_eval(lo, hi, &mut |item| items.push(item)) };
            items.into_iter().sum::<S>()
        })
        .into_iter()
        .sum()
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Collection types constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par_iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par_iter: P) -> Self {
        let chunks = run_chunks(&par_iter, |iter, lo, hi| {
            let mut v = Vec::with_capacity(hi - lo);
            // SAFETY: disjoint in-bounds chunks, each evaluated once.
            unsafe { iter.pi_eval(lo, hi, &mut |item| v.push(item)) };
            v
        });
        let mut out = Vec::with_capacity(par_iter.pi_len());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

/// Splits `0..p.len()` into chunks and evaluates `work(p, lo, hi)` for each
/// as pool tasks (recursive join splitting); returns per-chunk results in
/// chunk (hence index) order.
fn run_chunks<P, R, W>(p: &P, work: W) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    W: Fn(&P, usize, usize) -> R + Sync,
{
    let n = p.pi_len();
    let threads = current_num_threads();
    // Sequential cutover: below 2×threads items the task overhead wins —
    // unless the iterator requested a finer granularity via with_min_len.
    let cutover = match p.pi_min_len() {
        Some(min) => 2 * min,
        None => 2 * threads,
    };
    if n == 0 || threads == 1 || n < cutover.max(2) {
        return if n == 0 { Vec::new() } else { vec![work(p, 0, n)] };
    }
    let pieces = match p.pi_min_len() {
        Some(min) => (threads * 4).min(n / min.max(1)).max(1).min(n),
        None => (threads * 4).min(n),
    };
    let base = n / pieces;
    let extra = n % pieces;
    let bounds: Vec<(usize, usize)> = (0..pieces)
        .scan(0usize, |start, i| {
            let len = base + usize::from(i < extra);
            let lo = *start;
            *start += len;
            Some((lo, lo + len))
        })
        .collect();

    let mut results: Vec<Option<R>> = (0..pieces).map(|_| None).collect();
    split_chunks(&bounds, &mut results, &|lo, hi| work(p, lo, hi));
    results.into_iter().map(|r| r.expect("every chunk evaluated")).collect()
}

/// Binary fork-join over the chunk list: each recursion level publishes its
/// right half to the pool and descends into the left. Results land in the
/// disjoint `out` slots, so recombination is free.
fn split_chunks<R: Send>(
    bounds: &[(usize, usize)],
    out: &mut [Option<R>],
    work: &(dyn Fn(usize, usize) -> R + Sync),
) {
    debug_assert_eq!(bounds.len(), out.len());
    match bounds.len() {
        0 => {}
        1 => out[0] = Some(work(bounds[0].0, bounds[0].1)),
        len => {
            let mid = len / 2;
            let (bounds_l, bounds_r) = bounds.split_at(mid);
            let (out_l, out_r) = out.split_at_mut(mid);
            crate::join(
                || split_chunks(bounds_l, out_l, work),
                || split_chunks(bounds_r, out_r, work),
            );
        }
    }
}

// ---- adapter types ------------------------------------------------------

/// Granularity override from [`ParallelIterator::with_min_len`].
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P: ParallelIterator> ParallelIterator for MinLen<P> {
    type Item = P::Item;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    /// # Safety
    /// Same contract as [`ParallelIterator::pi_eval`]; the caller's
    /// disjoint once-only ranges are forwarded to the base unchanged.
    unsafe fn pi_eval(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(Self::Item)) {
        self.base.pi_eval(lo, hi, sink);
    }

    fn pi_min_len(&self) -> Option<usize> {
        Some(self.min)
    }
}

pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    /// # Safety
    /// Same contract as [`ParallelIterator::pi_eval`]; each base item is
    /// evaluated exactly once and mapped in place.
    unsafe fn pi_eval(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(R)) {
        self.base.pi_eval(lo, hi, &mut |item| sink((self.f)(item)));
    }

    fn pi_min_len(&self) -> Option<usize> {
        self.base.pi_min_len()
    }
}

pub struct MapInit<P, INIT, F> {
    base: P,
    init: INIT,
    f: F,
}

impl<P, T, R, INIT, F> ParallelIterator for MapInit<P, INIT, F>
where
    P: ParallelIterator,
    R: Send,
    INIT: Fn() -> T + Sync + Send,
    F: Fn(&mut T, P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    /// # Safety
    /// Same contract as [`ParallelIterator::pi_eval`]; one scratch value
    /// per call, base range forwarded once.
    unsafe fn pi_eval(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(R)) {
        let mut scratch = (self.init)();
        self.base.pi_eval(lo, hi, &mut |item| sink((self.f)(&mut scratch, item)));
    }

    fn pi_min_len(&self) -> Option<usize> {
        self.base.pi_min_len()
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }

    /// # Safety
    /// Same contract as [`ParallelIterator::pi_eval`]; `lo..hi` is passed
    /// to each base exactly once (`pi_len` is the min of the two bases,
    /// so the range is in bounds for both).
    unsafe fn pi_eval(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(Self::Item)) {
        let mut left = Vec::with_capacity(hi - lo);
        self.a.pi_eval(lo, hi, &mut |item| left.push(item));
        let mut right = Vec::with_capacity(hi - lo);
        self.b.pi_eval(lo, hi, &mut |item| right.push(item));
        for pair in left.into_iter().zip(right) {
            sink(pair);
        }
    }

    fn pi_min_len(&self) -> Option<usize> {
        match (self.a.pi_min_len(), self.b.pi_min_len()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (x, None) | (None, x) => x,
        }
    }
}

/// Pending `fold`; finished by [`Fold::reduce`].
pub struct Fold<P, ID, F> {
    base: P,
    identity: ID,
    fold_op: F,
}

impl<P, T, ID, F> Fold<P, ID, F>
where
    P: ParallelIterator,
    T: Send,
    ID: Fn() -> T + Sync + Send,
    F: Fn(T, P::Item) -> T + Sync + Send,
{
    /// Combines the per-chunk accumulators left to right.
    pub fn reduce<RID, OP>(self, identity: RID, op: OP) -> T
    where
        RID: Fn() -> T + Sync + Send,
        OP: Fn(T, T) -> T + Sync + Send,
    {
        let accs = run_chunks(&self.base, |base, lo, hi| {
            let mut acc = Some((self.identity)());
            // SAFETY: disjoint in-bounds chunks, each evaluated once.
            unsafe {
                base.pi_eval(lo, hi, &mut |item| {
                    acc = Some((self.fold_op)(acc.take().expect("fold accumulator"), item));
                });
            }
            acc.expect("fold accumulator")
        });
        accs.into_iter().fold(identity(), &op)
    }
}

// ---- sources ------------------------------------------------------------

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` over borrowed elements.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

pub struct RangeParIter<T> {
    start: T,
    len: usize,
}

/// Integer types usable as parallel range endpoints. A single blanket impl
/// over this trait (rather than one impl per type) keeps rustc's `i32`
/// integer-literal fallback working for `(0..n).into_par_iter()`.
pub trait RangeInt: Copy + Send + Sync {
    fn span_len(start: Self, end: Self) -> usize;
    fn offset(self, i: usize) -> Self;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn span_len(start: Self, end: Self) -> usize {
                if end > start { (end - start) as usize } else { 0 }
            }
            fn offset(self, i: usize) -> Self {
                self + i as $t
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i32, i64);

impl<T: RangeInt> IntoParallelIterator for Range<T> {
    type Item = T;
    type Iter = RangeParIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        RangeParIter { start: self.start, len: T::span_len(self.start, self.end) }
    }
}

impl<T: RangeInt> ParallelIterator for RangeParIter<T> {
    type Item = T;

    fn pi_len(&self) -> usize {
        self.len
    }

    /// # Safety
    /// Trivially sound: produces values by arithmetic, owns nothing, and
    /// repeated evaluation could at worst duplicate a `Copy` integer.
    unsafe fn pi_eval(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(T)) {
        for i in lo..hi {
            sink(self.start.offset(i));
        }
    }
}

/// Borrowing source over a slice.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + Send> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    /// # Safety
    /// Trivially sound: hands out shared borrows of a live slice; bounds
    /// are checked by the indexing.
    unsafe fn pi_eval(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(&'a T)) {
        for item in &self.slice[lo..hi] {
            sink(item);
        }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + Send> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn into_par_iter(self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + Send> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn into_par_iter(self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

/// Owning source over a `Vec`: items are moved out by raw pointer read.
///
/// Safety contract: a terminal operation evaluates every index exactly once
/// (chunks are disjoint and cover `0..len`), so each item is moved out at
/// most once. Items never evaluated (early drop, zip truncation, panic) are
/// *leaked*, not double-dropped — the backing buffer is deallocated with
/// length zero.
pub struct VecParIter<T> {
    _buf: Vec<T>, // length forced to 0; owns the allocation
    ptr: *mut T,
    len: usize,
}

// SAFETY: the raw pointer is just an optimisation over the owned buffer
// in `_buf` — the iterator owns the items outright (Send for T: Send),
// and &VecParIter only permits pi_eval, whose once-only contract prevents
// two threads from reading the same item (Sync).
unsafe impl<T: Send> Send for VecParIter<T> {}
// SAFETY: see the Send impl above — the once-only pi_eval contract is
// what makes shared references harmless.
unsafe impl<T: Send> Sync for VecParIter<T> {}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(mut self) -> Self::Iter {
        let ptr = self.as_mut_ptr();
        let len = self.len();
        // The iterator now owns the items; the Vec only owns the buffer.
        // SAFETY: 0 <= capacity, and the first `len` items stay
        // initialised — ownership of them moves to the VecParIter, which
        // reads each at most once and leaks the rest (see type doc).
        unsafe { self.set_len(0) };
        VecParIter { _buf: self, ptr, len }
    }
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn pi_len(&self) -> usize {
        self.len
    }

    /// # Safety
    /// Same contract as [`ParallelIterator::pi_eval`] — and here it is
    /// load-bearing: each index is moved out by raw read, so a repeated
    /// index would double an owned value.
    unsafe fn pi_eval(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(T)) {
        debug_assert!(hi <= self.len);
        for i in lo..hi {
            // SAFETY: indices within 0..len, each read exactly once per the
            // trait contract, and the buffer outlives self (held in `buf`).
            sink(unsafe { std::ptr::read(self.ptr.add(i)) });
        }
    }
}

// ---- slices -------------------------------------------------------------

/// Parallel read-only operations on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous `chunk_size`-sized pieces (the
    /// last may be shorter), in order.
    fn par_chunks(&self, chunk_size: usize) -> ChunksParIter<'_, T>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ChunksParIter<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ChunksParIter { slice: self, chunk_size }
    }
}

/// Borrowing source yielding `&[T]` chunks.
pub struct ChunksParIter<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync + Send> ParallelIterator for ChunksParIter<'a, T> {
    type Item = &'a [T];

    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    /// # Safety
    /// Trivially sound: shared borrows of a live slice, bounds clamped to
    /// its length.
    unsafe fn pi_eval(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(&'a [T])) {
        for i in lo..hi {
            let start = i * self.chunk_size;
            let end = (start + self.chunk_size).min(self.slice.len());
            sink(&self.slice[start..end]);
        }
    }
}

/// Parallel operations on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Sorts the slice with an unstable parallel quicksort: partition
    /// sequentially, then sort the two sides as pool tasks via
    /// [`crate::join`], falling back to `slice::sort_unstable` below a
    /// sequential cutoff.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Parallel iterator over contiguous mutable `chunk_size`-sized pieces
    /// (the last may be shorter), in order.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutParIter<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_quicksort(self);
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutParIter<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ChunksMutParIter {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk_size,
            _marker: PhantomData,
        }
    }
}

/// Mutable-chunk source. Chunk `i` covers
/// `i*chunk_size .. min((i+1)*chunk_size, len)` — chunks at distinct indices
/// are disjoint, and the terminal-operation contract evaluates each index at
/// most once, so handing out `&'a mut [T]` per index is race-free.
pub struct ChunksMutParIter<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk_size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the raw pointer stands in for the unique `&'a mut [T]` borrow
// captured in `_marker` (Send for T: Send); sharing &self across threads
// only exposes pi_eval, whose once-only disjoint-chunk contract prevents
// aliasing mutable slices (Sync).
unsafe impl<T: Send> Send for ChunksMutParIter<'_, T> {}
// SAFETY: see the Send impl above — disjoint chunks mean shared access
// never aliases a mutable slice.
unsafe impl<T: Send> Sync for ChunksMutParIter<'_, T> {}

impl<'a, T: Send + 'a> ParallelIterator for ChunksMutParIter<'a, T> {
    type Item = &'a mut [T];

    fn pi_len(&self) -> usize {
        self.len.div_ceil(self.chunk_size)
    }

    /// # Safety
    /// Same contract as [`ParallelIterator::pi_eval`] — load-bearing:
    /// chunks at distinct indices are disjoint, so once-only evaluation
    /// is what keeps the `&mut` slices from aliasing.
    unsafe fn pi_eval(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(&'a mut [T])) {
        for i in lo..hi {
            let start = i * self.chunk_size;
            let end = (start + self.chunk_size).min(self.len);
            // SAFETY: start < len for every valid index (pi_len rounds up),
            // distinct indices give disjoint ranges, and each index is
            // evaluated at most once per the trait contract; the borrow 'a
            // pins the underlying slice.
            sink(unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) });
        }
    }
}

/// Sequential-sort cutoff: below this many elements the partition/steal
/// overhead outweighs the parallelism.
const SORT_SEQ_CUTOFF: usize = 4096;

fn par_quicksort<T: Ord + Send>(v: &mut [T]) {
    if v.len() <= SORT_SEQ_CUTOFF || current_num_threads() == 1 {
        v.sort_unstable();
        return;
    }
    // Introsort-style depth bound: a pivot-quality losing streak falls back
    // to the sequential sort instead of degenerating to quadratic time (and
    // unbounded fork depth).
    let depth_limit = 2 * (usize::BITS - v.len().leading_zeros()) + 8;
    par_quicksort_depth(v, depth_limit);
}

fn par_quicksort_depth<T: Ord + Send>(v: &mut [T], depth: u32) {
    if v.len() <= SORT_SEQ_CUTOFF || depth == 0 {
        v.sort_unstable();
        return;
    }
    let (lt, gt) = partition3(v);
    let (left, rest) = v.split_at_mut(lt);
    let right = &mut rest[gt - lt..]; // rest[..gt-lt] == pivot, already placed
    crate::join(|| par_quicksort_depth(left, depth - 1), || par_quicksort_depth(right, depth - 1));
}

/// Sedgewick three-way partition around a median-of-three pivot: returns
/// `(lt, gt)` with `v[..lt] < pivot`, `v[lt..gt] == pivot`, `v[gt..] >
/// pivot`. Grouping the equal run excludes it from both recursions, so
/// duplicate-heavy (even constant) inputs cannot degenerate.
fn partition3<T: Ord>(v: &mut [T]) -> (usize, usize) {
    let n = v.len();
    let (mid, last) = (n / 2, n - 1);
    // Median of three into v[0], which seeds the equal region.
    if v[mid] < v[0] {
        v.swap(0, mid);
    }
    if v[last] < v[0] {
        v.swap(0, last);
    }
    if v[last] < v[mid] {
        v.swap(mid, last);
    }
    v.swap(0, mid);
    // Invariant: v[..lt] < p, v[lt..i] == p (nonempty, so v[lt] is always a
    // pivot-equal representative to compare against), v[gt..] > p.
    let (mut lt, mut i, mut gt) = (0usize, 1usize, n);
    while i < gt {
        match v[i].cmp(&v[lt]) {
            std::cmp::Ordering::Less => {
                v.swap(i, lt);
                lt += 1;
                i += 1;
            }
            std::cmp::Ordering::Equal => i += 1,
            std::cmp::Ordering::Greater => {
                gt -= 1;
                v.swap(i, gt);
            }
        }
    }
    (lt, gt)
}
