//! Schedule-fuzzing preemption points (a lightweight, shuttle-style model
//! harness) with deterministic capture/replay.
//!
//! Real model checkers (Loom, Shuttle) replace the sync primitives and
//! enumerate interleavings; we are offline and the substrate is shared
//! with production builds, so this module takes the cheaper route that
//! still finds single-preemption races: **seeded pseudo-random yields at
//! hand-placed interleaving points** — and, since PR 10, records every
//! decision so a failing schedule can be re-executed exactly.
//!
//! [`yield_point`] is sprinkled through the lock-free hot paths (deque
//! push/take/steal, `EpochMinArray` writes/refill, `ResponseCache`
//! insert/lookup/invalidate, the lane queue). Outside
//! `cfg(feature = "schedule_fuzz")` it compiles to an empty `#[inline]`
//! function — zero cost in production. With the feature on, each call
//! draws a **decision byte** — do nothing, spin briefly, or
//! `std::thread::yield_now()` — widening the window of every racy region
//! a different way on every seed.
//!
//! ## Capture and replay
//!
//! Stress tests wrap their per-seed loops in [`run_scenario`], which
//! records the decision byte of every `yield_point` call (in global call
//! order) into an in-memory log. When a seed's body panics, the log is
//! written as a compact `RSTRACE1` trace file and the panic message is
//! followed by the path plus a `cargo xtask replay <path>` hint: the
//! replay re-runs that one scenario feeding the i-th recorded decision
//! back to the i-th `yield_point` call, reproducing the decision
//! sequence of the failing schedule exactly.
//!
//! What replay pins down is the *decision sequence*, not OS thread
//! timing: the i-th arrival at a yield point gets the i-th recorded
//! decision whichever thread makes it. For the single-threaded and
//! no-retry (`fetch_min`-style) paths the call order itself is
//! deterministic, so replay is exact; for heavily racing paths it
//! re-applies the same preemption pattern, which in practice re-widens
//! the same windows. While capture or replay is active the decision
//! draw is serialized through one mutex (that global order is what makes
//! a trace meaningful); outside [`run_scenario`] the stream stays the
//! PR 7 lock-free Relaxed RNG, whose racing draws deliberately *add*
//! schedule entropy.
//!
//! Environment knobs, all read by [`run_scenario`]:
//!
//! * `RS_REPLAY_TRACE=<file>` — if the trace's package/target/scenario
//!   match, replay it (one run, recorded seed) instead of the seed sweep.
//!   `cargo xtask replay <file>` sets this up for you.
//! * `RS_REPLAY_STRICT=1` — additionally assert the replay consumed
//!   every recorded decision, echoed them byte-identically, and took the
//!   same number of yields.
//! * `RS_RECORD_TRACE=1` — also write the seed-0 trace on *success*
//!   (used by CI's replay smoke and for capturing baselines).
//! * `RS_TRACE_DIR=<dir>` — where traces go (default: the system temp
//!   dir under `rs-schedule-traces/`).

#[cfg(feature = "schedule_fuzz")]
mod active {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, PoisonError};

    // ORDERING: the RNG stream and the yield counter are schedule
    // *perturbation* state — no data is published through them and any
    // interleaving of draws is acceptable (more entropy, see module doc),
    // so Relaxed cannot lose anything that matters.
    static STATE: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    static YIELDS: AtomicU64 = AtomicU64::new(0);

    /// Fast-path gate: true while capture or replay is active, i.e.
    /// while [`CONTROL`] must be consulted.
    // ORDERING: advisory gate — a stale read merely routes one draw down
    // the lock-free path an instant after capture toggles, and
    // run_scenario flips it before any scenario thread starts (the
    // thread spawn synchronizes), so Relaxed is enough.
    static ACTIVE: AtomicBool = AtomicBool::new(false);

    /// Capture/replay state. One mutex on purpose: while active, every
    /// decision draw passes through it, which serializes the draws into
    /// the single global order a trace records and replays.
    static CONTROL: Mutex<Control> =
        Mutex::new(Control { recording: false, log: Vec::new(), replay: None });

    struct Control {
        recording: bool,
        log: Vec<u8>,
        replay: Option<Replay>,
    }

    struct Replay {
        decisions: Vec<u8>,
        next: usize,
    }

    fn control() -> std::sync::MutexGuard<'static, Control> {
        // Poisoning just means a scenario body panicked mid-draw — the
        // capture state itself is always coherent, so keep going.
        CONTROL.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn seed_schedule(seed: u64) {
        // ORDERING: see STATE above — reseeding racing with draws just
        // reshuffles the schedule.
        STATE.store(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1, Ordering::Relaxed);
    }

    pub fn yields_taken() -> u64 {
        // ORDERING: advisory counter, read for test diagnostics only.
        YIELDS.load(Ordering::Relaxed)
    }

    /// Draws the next splitmix64 value from the shared stream.
    fn draw() -> u64 {
        // ORDERING: see STATE above.
        let mut z = STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z
    }

    use super::{DECISION_NOTHING, DECISION_SPIN_BASE, DECISION_YIELD};

    fn decide(z: u64) -> u8 {
        match z & 7 {
            0 => DECISION_YIELD,
            1 | 2 => DECISION_SPIN_BASE + ((z >> 3) & 63) as u8,
            _ => DECISION_NOTHING,
        }
    }

    fn apply(decision: u8) {
        match decision {
            // Full OS-level yield: lets another runnable thread win the
            // race window outright.
            DECISION_YIELD => {
                // ORDERING: advisory counter (see YIELDS above).
                YIELDS.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
            // Most calls do nothing: racy regions stay short often
            // enough that both "fast" and "slow" paths get exercised.
            DECISION_NOTHING => {}
            // Short spin: stretches the window without descheduling, so
            // same-core SMT siblings and other cores can slip in.
            spin => {
                for _ in 0..(spin - DECISION_SPIN_BASE) {
                    std::hint::spin_loop();
                }
            }
        }
    }

    #[inline]
    pub fn yield_point() {
        // ORDERING: see ACTIVE above.
        if !ACTIVE.load(Ordering::Relaxed) {
            // PR 7 fast path: lock-free draws whose racing interleaving
            // adds entropy on top of the seed.
            apply(decide(draw()));
            return;
        }
        let decision = {
            let mut c = control();
            let decision = match &mut c.replay {
                Some(r) => {
                    let d = r.decisions.get(r.next).copied().unwrap_or(DECISION_NOTHING);
                    r.next += 1;
                    d
                }
                None => decide(draw()),
            };
            if c.recording {
                c.log.push(decision);
            }
            decision
        };
        // The lock is released before the decision is *applied*, so the
        // spin/yield widening happens unserialized, as in a live run.
        apply(decision);
    }

    /// Starts capturing decision bytes (clearing any previous log).
    /// Composes with replay: during a replay with recording on, the log
    /// echoes the decisions actually fed back — the identity check
    /// replay tests rely on.
    pub fn start_recording() {
        let mut c = control();
        c.recording = true;
        c.log = Vec::new();
        // ORDERING: see ACTIVE above.
        ACTIVE.store(true, Ordering::Relaxed);
    }

    /// Stops capturing and returns the decision log in global call order.
    pub fn stop_recording() -> Vec<u8> {
        let mut c = control();
        c.recording = false;
        if c.replay.is_none() {
            // ORDERING: see ACTIVE above.
            ACTIVE.store(false, Ordering::Relaxed);
        }
        std::mem::take(&mut c.log)
    }

    /// Starts feeding `decisions` back: the i-th `yield_point` call from
    /// now on applies the i-th byte (calls past the end do nothing).
    pub fn start_replay(decisions: Vec<u8>) {
        let mut c = control();
        c.replay = Some(Replay { decisions, next: 0 });
        // ORDERING: see ACTIVE above.
        ACTIVE.store(true, Ordering::Relaxed);
    }

    /// Ends replay; returns `(consumed, recorded)` call counts.
    /// `consumed > recorded` means the run made more `yield_point` calls
    /// than the trace had decisions for (the excess did nothing).
    pub fn stop_replay() -> (usize, usize) {
        let mut c = control();
        let counts = match c.replay.take() {
            Some(r) => (r.next, r.decisions.len()),
            None => (0, 0),
        };
        if !c.recording {
            // ORDERING: see ACTIVE above.
            ACTIVE.store(false, Ordering::Relaxed);
        }
        counts
    }
}

#[cfg(feature = "schedule_fuzz")]
pub use active::{
    seed_schedule, start_recording, start_replay, stop_recording, stop_replay, yield_point,
    yields_taken,
};

/// Decision encoding (the trace byte format): `0` do nothing, `1` full
/// `yield_now`, `2 + n` spin for `n` iterations (`n ≤ 63`).
pub const DECISION_NOTHING: u8 = 0;
/// See [`DECISION_NOTHING`].
pub const DECISION_YIELD: u8 = 1;
/// See [`DECISION_NOTHING`].
pub const DECISION_SPIN_BASE: u8 = 2;

/// Seeds the schedule-perturbation stream. No-op without the
/// `schedule_fuzz` feature.
#[cfg(not(feature = "schedule_fuzz"))]
#[inline(always)]
pub fn seed_schedule(_seed: u64) {}

/// Number of full `yield_now` preemptions taken so far (diagnostics).
/// Always zero without the `schedule_fuzz` feature.
#[cfg(not(feature = "schedule_fuzz"))]
#[inline(always)]
pub fn yields_taken() -> u64 {
    0
}

/// A potential preemption point in a lock-free fast path. Compiles to
/// nothing unless the `schedule_fuzz` feature is enabled.
#[cfg(not(feature = "schedule_fuzz"))]
#[inline(always)]
pub fn yield_point() {}

/// Starts capturing decision bytes. No-op without `schedule_fuzz`.
#[cfg(not(feature = "schedule_fuzz"))]
#[inline(always)]
pub fn start_recording() {}

/// Stops capturing; always empty without `schedule_fuzz`.
#[cfg(not(feature = "schedule_fuzz"))]
#[inline(always)]
pub fn stop_recording() -> Vec<u8> {
    Vec::new()
}

/// Starts replaying a decision log. No-op without `schedule_fuzz`.
#[cfg(not(feature = "schedule_fuzz"))]
#[inline(always)]
pub fn start_replay(_decisions: Vec<u8>) {}

/// Ends replay; always `(0, 0)` without `schedule_fuzz`.
#[cfg(not(feature = "schedule_fuzz"))]
#[inline(always)]
pub fn stop_replay() -> (usize, usize) {
    (0, 0)
}

// ---------------------------------------------------------------------------
// Traces and the scenario harness (available in both modes; without the
// feature the harness degenerates to a plain seed loop)
// ---------------------------------------------------------------------------

/// Magic header of a schedule trace file.
pub const TRACE_MAGIC: &[u8; 8] = b"RSTRACE1";

/// A recorded schedule: enough to re-launch the exact scenario
/// (`cargo xtask replay` reads the same header via its own dep-free
/// parser in `crates/xtask/src/trace.rs` — keep the two in sync).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Cargo package the scenario lives in (`rs_par`, `rs_serve`).
    pub package: String,
    /// Integration-test target (source file stem, e.g. `schedule_fuzz`).
    pub target: String,
    /// Test function name.
    pub scenario: String,
    /// `RS_NUM_THREADS` at record time; empty when it was unset.
    pub threads_env: String,
    /// The model seed the failing run used.
    pub seed: u64,
    /// `yields_taken` delta over the recorded run.
    pub yields_taken: u64,
    /// Decision bytes in global `yield_point` call order.
    pub decisions: Vec<u8>,
}

impl Trace {
    /// Serializes to the `RSTRACE1` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64 + self.decisions.len());
        b.extend_from_slice(TRACE_MAGIC);
        for s in [&self.package, &self.target, &self.scenario, &self.threads_env] {
            b.extend_from_slice(&(s.len() as u64).to_le_bytes());
            b.extend_from_slice(s.as_bytes());
        }
        b.extend_from_slice(&self.seed.to_le_bytes());
        b.extend_from_slice(&self.yields_taken.to_le_bytes());
        b.extend_from_slice(&(self.decisions.len() as u64).to_le_bytes());
        b.extend_from_slice(&self.decisions);
        b
    }

    /// Parses the `RSTRACE1` byte format (inverse of [`Trace::to_bytes`]).
    pub fn parse(bytes: &[u8]) -> Result<Trace, String> {
        fn take<'a>(b: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], String> {
            if b.len() < n {
                return Err(format!("truncated {what}"));
            }
            let (head, rest) = b.split_at(n);
            *b = rest;
            Ok(head)
        }
        fn u64_of(b: &mut &[u8], what: &str) -> Result<u64, String> {
            Ok(u64::from_le_bytes(take(b, 8, what)?.try_into().expect("8 bytes")))
        }
        fn string(b: &mut &[u8], what: &str) -> Result<String, String> {
            let len = u64_of(b, what)? as usize;
            if len > 4096 {
                return Err(format!("{what} length {len} is implausible"));
            }
            String::from_utf8(take(b, len, what)?.to_vec())
                .map_err(|_| format!("{what} is not utf-8"))
        }
        let mut b = bytes;
        if take(&mut b, 8, "magic")? != TRACE_MAGIC {
            return Err("bad magic (expected RSTRACE1)".to_string());
        }
        let package = string(&mut b, "package")?;
        let target = string(&mut b, "target")?;
        let scenario = string(&mut b, "scenario")?;
        let threads_env = string(&mut b, "threads_env")?;
        let seed = u64_of(&mut b, "seed")?;
        let yields_taken = u64_of(&mut b, "yields_taken")?;
        let count = u64_of(&mut b, "decision count")? as usize;
        let decisions = take(&mut b, count, "decisions")?.to_vec();
        if !b.is_empty() {
            return Err(format!("{} trailing bytes after decisions", b.len()));
        }
        Ok(Trace { package, target, scenario, threads_env, seed, yields_taken, decisions })
    }
}

/// Identifies a stress scenario for tracing: which `cargo test`
/// invocation re-runs it.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    package: String,
    target: String,
    scenario: String,
}

impl ScenarioSpec {
    /// `package` is `env!("CARGO_PKG_NAME")`, `source_file` is `file!()`
    /// (the test-target stem is derived from it), `scenario` is the test
    /// function's name.
    pub fn new(package: &str, source_file: &str, scenario: &str) -> ScenarioSpec {
        let stem =
            source_file.rsplit(['/', '\\']).next().unwrap_or(source_file).trim_end_matches(".rs");
        ScenarioSpec {
            package: package.to_string(),
            target: stem.to_string(),
            scenario: scenario.to_string(),
        }
    }

    /// Decorrelates the model stream across scenarios that share a seed
    /// sweep: the scenario name is folded into every seed (FNV-1a), so
    /// no two scenarios replay each other's schedules.
    fn schedule_seed(&self, seed: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in self.scenario.bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ seed
    }
}

/// Runs `body(seed)` for `seed ∈ 0..seeds` with the model stream seeded
/// per scenario, capturing every schedule. On a panic the failing seed's
/// trace is written to disk, its path printed with a
/// `cargo xtask replay` hint, and the panic resumed. Scenarios are
/// serialized process-wide so concurrent tests cannot interleave their
/// recorded decisions.
///
/// Honours `RS_REPLAY_TRACE` / `RS_REPLAY_STRICT` / `RS_RECORD_TRACE` /
/// `RS_TRACE_DIR` as described in the module docs. Without the
/// `schedule_fuzz` feature this is a plain seed loop (capture would be
/// empty — every yield point is a no-op).
pub fn run_scenario(spec: ScenarioSpec, seeds: u64, mut body: impl FnMut(u64)) {
    if !cfg!(feature = "schedule_fuzz") {
        for seed in 0..seeds {
            seed_schedule(spec.schedule_seed(seed));
            body(seed);
        }
        return;
    }

    // One scenario at a time per process: the capture log is global.
    static SCENARIO: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _serial = SCENARIO.lock().unwrap_or_else(std::sync::PoisonError::into_inner);

    if let Some(trace) = replay_request_for(&spec) {
        eprintln!(
            "model: replaying {}/{}/{} — seed {}, {} decisions, {} recorded yields",
            trace.package,
            trace.target,
            trace.scenario,
            trace.seed,
            trace.decisions.len(),
            trace.yields_taken,
        );
        let strict = std::env::var("RS_REPLAY_STRICT").is_ok_and(|v| !v.is_empty() && v != "0");
        seed_schedule(spec.schedule_seed(trace.seed));
        let yields_before = yields_taken();
        start_replay(trace.decisions.clone());
        start_recording();
        body(trace.seed);
        let echoed = stop_recording();
        let (consumed, recorded) = stop_replay();
        let yields = yields_taken() - yields_before;
        eprintln!(
            "model: replay done — consumed {consumed}/{recorded} decisions, {yields} yields \
             (recorded {})",
            trace.yields_taken
        );
        if strict {
            assert_eq!(
                consumed, recorded,
                "strict replay: the run made {consumed} yield_point calls but the trace \
                 recorded {recorded}"
            );
            assert_eq!(
                echoed, trace.decisions,
                "strict replay: echoed decision bytes diverge from the trace"
            );
            assert_eq!(
                yields, trace.yields_taken,
                "strict replay: yields taken diverge from the trace"
            );
        }
        return;
    }

    let force_record = std::env::var("RS_RECORD_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
    for seed in 0..seeds {
        seed_schedule(spec.schedule_seed(seed));
        let yields_before = yields_taken();
        start_recording();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(seed)));
        let decisions = stop_recording();
        let yields = yields_taken() - yields_before;
        let trace = || Trace {
            package: spec.package.clone(),
            target: spec.target.clone(),
            scenario: spec.scenario.clone(),
            threads_env: std::env::var("RS_NUM_THREADS").unwrap_or_default(),
            seed,
            yields_taken: yields,
            decisions: decisions.clone(),
        };
        if let Err(panic) = outcome {
            match write_trace(&trace()) {
                Ok(path) => eprintln!(
                    "model: seed {seed} failed — schedule trace written to {path}\n\
                     model: reproduce with `cargo xtask replay {path}`",
                ),
                Err(e) => eprintln!("model: seed {seed} failed; trace not written ({e})"),
            }
            std::panic::resume_unwind(panic);
        }
        if force_record && seed == 0 {
            match write_trace(&trace()) {
                Ok(path) => eprintln!("model: seed 0 trace recorded to {path}"),
                Err(e) => eprintln!("model: RS_RECORD_TRACE set but trace not written ({e})"),
            }
        }
    }
}

/// The trace to replay, if `RS_REPLAY_TRACE` names one for this
/// scenario. A trace for a *different* scenario is ignored (the suite
/// may be running every test; only the matching one replays).
fn replay_request_for(spec: &ScenarioSpec) -> Option<Trace> {
    let path = std::env::var("RS_REPLAY_TRACE").ok().filter(|p| !p.is_empty())?;
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("model: RS_REPLAY_TRACE={path} is unreadable ({e}); running normally");
            return None;
        }
    };
    let trace = match Trace::parse(&bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("model: RS_REPLAY_TRACE={path} is not a trace ({e}); running normally");
            return None;
        }
    };
    (trace.package == spec.package
        && trace.target == spec.target
        && trace.scenario == spec.scenario)
        .then_some(trace)
}

/// Writes `trace` under `RS_TRACE_DIR` (default: temp dir +
/// `rs-schedule-traces/`); returns the path.
fn write_trace(trace: &Trace) -> Result<String, std::io::Error> {
    let dir = match std::env::var("RS_TRACE_DIR") {
        Ok(d) if !d.is_empty() => std::path::PathBuf::from(d),
        _ => std::env::temp_dir().join("rs-schedule-traces"),
    };
    std::fs::create_dir_all(&dir)?;
    let file = dir.join(format!(
        "{}-{}-{}-seed{}.rstrace",
        trace.package, trace.target, trace.scenario, trace.seed
    ));
    std::fs::write(&file, trace.to_bytes())?;
    Ok(file.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yield_point_is_callable_and_cheap() {
        for _ in 0..10_000 {
            yield_point();
        }
    }

    #[test]
    fn seeding_is_callable() {
        seed_schedule(42);
        for _ in 0..1_000 {
            yield_point();
        }
        // With the feature off this is identically zero; with it on it is
        // whatever the schedule took — both are valid here.
        let _ = yields_taken();
    }

    #[test]
    fn trace_bytes_round_trip() {
        let t = Trace {
            package: "rs_par".into(),
            target: "schedule_fuzz".into(),
            scenario: "fuzz_exactly_one_lowering_winner".into(),
            threads_env: "4".into(),
            seed: 17,
            yields_taken: 3,
            decisions: vec![0, 1, 5, 1, 0, 1, 65],
        };
        assert_eq!(Trace::parse(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn trace_parse_rejects_garbage() {
        assert!(Trace::parse(b"NOTTRACE").is_err());
        let t = Trace {
            package: "p".into(),
            target: "t".into(),
            scenario: "s".into(),
            threads_env: String::new(),
            seed: 0,
            yields_taken: 0,
            decisions: vec![1, 2, 3],
        };
        let bytes = t.to_bytes();
        assert!(Trace::parse(&bytes[..bytes.len() - 1]).unwrap_err().contains("truncated"));
        let mut long = bytes.clone();
        long.push(9);
        assert!(Trace::parse(&long).unwrap_err().contains("trailing"));
    }

    #[test]
    fn scenario_spec_derives_the_target_stem() {
        let spec = ScenarioSpec::new("rs_par", "crates/par/tests/schedule_fuzz.rs", "fuzz_x");
        assert_eq!(spec.target, "schedule_fuzz");
        assert_eq!(spec.package, "rs_par");
        // Different scenarios never share a schedule stream.
        let other = ScenarioSpec::new("rs_par", "crates/par/tests/schedule_fuzz.rs", "fuzz_y");
        assert_ne!(spec.schedule_seed(3), other.schedule_seed(3));
    }

    #[test]
    fn run_scenario_visits_every_seed() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let seen = AtomicU64::new(0);
        let spec = ScenarioSpec::new("rayon", file!(), "run_scenario_visits_every_seed");
        run_scenario(spec, 5, |seed| {
            // ORDERING: test-local counter, no data published through it.
            seen.fetch_add(seed + 1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 1 + 2 + 3 + 4 + 5);
    }

    #[cfg(feature = "schedule_fuzz")]
    #[test]
    fn fuzzing_actually_preempts() {
        seed_schedule(7);
        let before = yields_taken();
        for _ in 0..100_000 {
            yield_point();
        }
        assert!(yields_taken() > before, "1/8 of 100k draws must yield");
    }

    // Capture/replay identity tests live in `crates/par/tests/replay.rs`:
    // the capture log is process-global, so they need a binary where no
    // unrelated test draws yield points concurrently.

    /// A failing seed leaves a parseable trace behind, named after its
    /// scenario and seed, and the panic still propagates.
    #[cfg(feature = "schedule_fuzz")]
    #[test]
    fn failing_seed_writes_a_replayable_trace() {
        let dir = std::env::temp_dir().join("rs-model-unit-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("RS_TRACE_DIR", &dir);
        let spec = ScenarioSpec::new("rayon", file!(), "failing_seed_writes_a_replayable_trace");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_scenario(spec, 8, |seed| {
                for _ in 0..16 {
                    yield_point();
                }
                assert_ne!(seed, 3, "injected failure");
            });
        }));
        std::env::remove_var("RS_TRACE_DIR");
        assert!(outcome.is_err(), "the seed-3 panic must propagate through run_scenario");
        let path = dir.join("rayon-model-failing_seed_writes_a_replayable_trace-seed3.rstrace");
        let bytes = std::fs::read(&path).expect("failing seed must write its trace");
        let trace = Trace::parse(&bytes).expect("written trace must parse");
        assert_eq!((trace.seed, trace.scenario.as_str()), (3, spec_name(&trace)));
        // Other tests' concurrent draws may be interleaved into the log
        // (capture is process-global), so only a lower bound is exact.
        assert!(trace.decisions.len() >= 16, "all 16 decisions of seed 3 are in the log");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "schedule_fuzz")]
    fn spec_name(t: &Trace) -> &str {
        assert_eq!(t.package, "rayon");
        assert_eq!(t.target, "model");
        "failing_seed_writes_a_replayable_trace"
    }
}
