//! Schedule-fuzzing preemption points (a lightweight, shuttle-style model
//! harness).
//!
//! Real model checkers (Loom, Shuttle) replace the sync primitives and
//! enumerate interleavings; we are offline and the substrate is shared
//! with production builds, so this module takes the cheaper route that
//! still finds single-preemption races: **seeded pseudo-random yields at
//! hand-placed interleaving points**.
//!
//! [`yield_point`] is sprinkled through the lock-free hot paths (deque
//! push/take/steal, `EpochMinArray` writes/refill, `ResponseCache`
//! insert/lookup/invalidate, the lane queue). Outside
//! `cfg(feature = "schedule_fuzz")` it compiles to an empty `#[inline]`
//! function — zero cost in production. With the feature on, each call
//! consults a global splitmix64 stream and either does nothing, spins
//! briefly, or calls `std::thread::yield_now()` — widening the window of
//! every racy region a different way on every seed.
//!
//! Stress tests drive thousands of seeds via [`seed_schedule`] and check
//! *invariants* (exactly-once, monotonicity, bounds) rather than exact
//! outcomes: a seed changes the schedule, never the specification. The
//! RNG is deliberately process-global and lock-free: concurrent callers
//! interleave their draws, which *adds* schedule entropy on top of the
//! seed — this is fuzzing for variety, not deterministic replay.

#[cfg(feature = "schedule_fuzz")]
mod active {
    use std::sync::atomic::{AtomicU64, Ordering};

    // ORDERING: the RNG stream and the yield counter are schedule
    // *perturbation* state — no data is published through them and any
    // interleaving of draws is acceptable (more entropy, see module doc),
    // so Relaxed cannot lose anything that matters.
    static STATE: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    static YIELDS: AtomicU64 = AtomicU64::new(0);

    pub fn seed_schedule(seed: u64) {
        // ORDERING: see STATE above — reseeding racing with draws just
        // reshuffles the schedule.
        STATE.store(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1, Ordering::Relaxed);
    }

    pub fn yields_taken() -> u64 {
        // ORDERING: advisory counter, read for test diagnostics only.
        YIELDS.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn yield_point() {
        // splitmix64 over a shared counter: each call draws the next
        // value; concurrent draws interleave arbitrarily (intended).
        // ORDERING: see STATE above.
        let mut z = STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        match z & 7 {
            // Full OS-level yield: lets another runnable thread win the
            // race window outright.
            0 => {
                // ORDERING: advisory counter (see YIELDS above).
                YIELDS.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
            // Short spin: stretches the window without descheduling, so
            // same-core SMT siblings and other cores can slip in.
            1 | 2 => {
                for _ in 0..(z >> 3) & 63 {
                    std::hint::spin_loop();
                }
            }
            // Most calls do nothing: racy regions stay short often
            // enough that both "fast" and "slow" paths get exercised.
            _ => {}
        }
    }
}

#[cfg(feature = "schedule_fuzz")]
pub use active::{seed_schedule, yield_point, yields_taken};

/// Seeds the schedule-perturbation stream. No-op without the
/// `schedule_fuzz` feature.
#[cfg(not(feature = "schedule_fuzz"))]
#[inline(always)]
pub fn seed_schedule(_seed: u64) {}

/// Number of full `yield_now` preemptions taken so far (diagnostics).
/// Always zero without the `schedule_fuzz` feature.
#[cfg(not(feature = "schedule_fuzz"))]
#[inline(always)]
pub fn yields_taken() -> u64 {
    0
}

/// A potential preemption point in a lock-free fast path. Compiles to
/// nothing unless the `schedule_fuzz` feature is enabled.
#[cfg(not(feature = "schedule_fuzz"))]
#[inline(always)]
pub fn yield_point() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yield_point_is_callable_and_cheap() {
        for _ in 0..10_000 {
            yield_point();
        }
    }

    #[test]
    fn seeding_is_callable() {
        seed_schedule(42);
        for _ in 0..1_000 {
            yield_point();
        }
        // With the feature off this is identically zero; with it on it is
        // whatever the schedule took — both are valid here.
        let _ = yields_taken();
    }

    #[cfg(feature = "schedule_fuzz")]
    #[test]
    fn fuzzing_actually_preempts() {
        seed_schedule(7);
        let before = yields_taken();
        for _ in 0..100_000 {
            yield_point();
        }
        assert!(yields_taken() > before, "1/8 of 100k draws must yield");
    }
}
