//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter` —
//! with straightforward wall-clock measurement: a warm-up pass, then
//! `sample_size` timed samples, reported as min/mean to stdout. No
//! statistics, plots, or baselines; enough for `cargo bench` to build, run,
//! and give usable relative numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (one per `criterion_group!`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup { _c: self, name, sample_size: 20 }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion default: 100;
    /// ours: 20, bounded below by 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_benchmark_id(), |b| f(b));
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_benchmark_id(), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id.0);
        if bencher.samples.is_empty() {
            println!("  {label}: no samples");
            return;
        }
        let min = bencher.samples.iter().min().unwrap();
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len() as u32;
        println!(
            "  {label}: min {:.3} ms, mean {:.3} ms ({} samples)",
            min.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
            bencher.samples.len()
        );
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `routine` (after one warm-up run).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

/// A benchmark identifier within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything accepted where criterion takes an id: a `BenchmarkId` or a
/// plain string.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Declares a function running each benchmark target with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
    }
}
