//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates registry, so this
//! in-tree crate provides the exact subset of the `rand` API the workspace
//! uses: a seedable [`rngs::StdRng`], the [`RngExt::random_range`] sampler
//! over integer and float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast, well
//! distributed, and fully deterministic in the seed, which is the property
//! every generator and test in this workspace relies on. It is **not**
//! cryptographically secure and does not reproduce upstream `rand`'s
//! streams; all in-repo seeds were chosen against this implementation.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (the subset of `rand::SeedableRng` we use).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range type (`rand`'s `SampleRange` analogue).
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

/// Extension methods every call site imports (`rand::RngExt`).
pub trait RngExt {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range` (`0..n`, `lo..=hi`, `0.0..1.0`, ...).
    ///
    /// Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

pub mod rngs {
    use super::SeedableRng;

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }
}

impl RngExt for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Unbiased draw from `[0, bound)` via Lemire-style rejection.
fn uniform_below(rng: &mut rngs::StdRng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next() as $t);
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod seq {
    use super::{rngs::StdRng, uniform_below};

    /// Slice shuffling (`rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let s = rng.random_range(-3i32..4);
            assert!((-3..4).contains(&s));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 items virtually never shuffle to identity");
    }
}
