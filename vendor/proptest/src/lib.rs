//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace tests use: the
//! [`Strategy`] trait over integer ranges, tuples, `prop_map` and
//! [`collection::vec`]; `any::<bool>()`; the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header; and `prop_assert!` /
//! `prop_assert_eq!` returning [`TestCaseError`].
//!
//! Each test runs `cases` deterministic inputs seeded from the test name
//! and case index. There is **no shrinking**: a failure reports the case
//! index so it can be re-run, which is enough for a CI signal (re-running
//! the test reproduces the identical input sequence).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::ops::Range;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// `any::<T>()` marker strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Arbitrary value of a supported type (currently `bool`).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    use super::*;

    /// Sizes accepted by [`vec`]: a fixed length or a range of lengths.
    pub trait SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            if self.is_empty() {
                self.start
            } else {
                rng.random_range(self.clone())
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    /// Vector of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy { element, size: Box::new(size) }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-case RNG: seeded from the test name and case index.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37_79b9))
}

/// The proptest test-harness macro (no shrinking; deterministic cases).
#[macro_export]
macro_rules! proptest {
    (
        $(#![proptest_config($cfg:expr)])?
        $(
            #[test]
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        /// Module-level config shared by the tests of this `proptest!` block.
        #[allow(unused_mut, unused_assignments)]
        fn __proptest_config() -> $crate::ProptestConfig {
            let mut config = $crate::ProptestConfig::default();
            $( config = $cfg; )?
            config
        }

        $(
            #[test]
            fn $name() {
                let config = __proptest_config();
                for case in 0..config.cases {
                    let mut __rng = $crate::test_rng(stringify!($name), case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("proptest {} failed at case {case}/{}: {e}",
                            stringify!($name), config.cases);
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r)));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r)));
        }
    }};
}

#[cfg(test)]
mod tests {
    mod default_config {
        use crate::prelude::*;

        proptest! {
            #[test]
            fn ranges_in_bounds(x in 0u32..100, y in 5usize..10) {
                prop_assert!(x < 100);
                prop_assert!((5..10).contains(&y));
            }

            #[test]
            fn vec_strategy_sizes(v in crate::collection::vec(0u64..50, 3..7)) {
                prop_assert!((3..7).contains(&v.len()));
                prop_assert!(v.iter().all(|&x| x < 50));
            }

            #[test]
            fn map_and_tuples(p in (0u32..10, 1u32..5).prop_map(|(a, b)| a * 10 + b)) {
                prop_assert!(p < 95);
            }
        }
    }

    mod custom_config {
        use crate::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(7))]

            #[test]
            fn config_applies(x in 0u64..1000) {
                prop_assert!(x < 1000);
            }
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = crate::test_rng("t", 3);
        let mut b = crate::test_rng("t", 3);
        assert_eq!(
            crate::Strategy::generate(&(0u64..1000), &mut a),
            crate::Strategy::generate(&(0u64..1000), &mut b)
        );
    }
}
