//! Parameter tuning, reproducing §5.4's guidance: k and ρ trade added
//! edges (space + work) against steps (depth). Prints the trade-off grid
//! and the paper's recommendation. Uses `Preprocessed` directly (it is an
//! `SsspSolver` too) because the edge-count statistics live there.
//!
//! ```text
//! cargo run --release --example tune_parameters
//! ```

use radius_stepping::prelude::*;

fn main() {
    let topology = graph::gen::road_network(90, 3);
    let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 4);
    println!("tuning on a road network: n = {}, m = {}\n", g.num_vertices(), g.num_edges());

    println!("   k |  rho | heuristic |  +edges (xm) | steps | max substeps");
    println!("-----+------+-----------+--------------+-------+-------------");
    let mut best: Option<(f64, String)> = None;
    for &k in &[1u32, 3] {
        for &rho in &[25usize, 50, 100] {
            for h in [ShortcutHeuristic::Greedy, ShortcutHeuristic::Dp] {
                if k == 1 && h == ShortcutHeuristic::Greedy {
                    continue; // identical to DP at k = 1
                }
                let cfg = PreprocessConfig { k, rho, heuristic: h };
                let pre = Preprocessed::build(&g, &cfg);
                let out = pre.solve(0);
                let factor = pre.stats.added_edge_factor();
                println!(
                    "{k:>4} | {rho:>4} | {h:>9?} | {factor:>12.2} | {:>5} | {:>12}",
                    out.stats.steps, out.stats.max_substeps_in_step
                );
                // §5.4: keep total edges around O(m) — score configs with
                // factor ≤ 1 by their step count.
                if factor <= 1.0 {
                    let label = format!("k={k}, rho={rho}, {h:?}");
                    if best.as_ref().is_none_or(|(s, _)| (out.stats.steps as f64) < *s) {
                        best = Some((out.stats.steps as f64, label));
                    }
                }
            }
        }
    }
    match best {
        Some((steps, label)) => println!(
            "\nbest config adding ≤ m edges: {label} ({steps} steps)\n\
             paper's rule of thumb (§5.4): k = 3 or 4, rho ∈ [50, 100] for weighted graphs"
        ),
        None => println!("\nno config stayed within the +m edge budget; lower rho or raise k"),
    }
}
