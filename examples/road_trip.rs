//! Road-network routing: the paper's motivating workload for multi-source
//! use. Preprocessing is paid once; every subsequent source amortises it
//! (§5.4: "since preprocessing is only run once, if Sssp will be run from
//! multiple sources, we suggest increasing ρ").
//!
//! ```text
//! cargo run --release --example road_trip
//! ```

use std::time::Instant;

use radius_stepping::prelude::*;

fn main() {
    // A synthetic road network (~40k junctions, avg degree ≈ 2.8 like
    // SNAP's roadNet-PA) with travel-time weights.
    let topology = graph::gen::road_network(200, 7);
    let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 8);
    let n = g.num_vertices();
    println!("road network: {} junctions, {} road segments", n, g.num_edges());

    // Preprocess with a bigger ball since we'll query many sources.
    let t = Instant::now();
    let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 96));
    println!(
        "preprocess (k=1, rho=96): {:.2}s, +{} edges ({:.2}x m)",
        t.elapsed().as_secs_f64(),
        pre.stats.effective_new_edges,
        pre.stats.added_edge_factor()
    );

    // A fleet of depots runs shortest paths to plan deliveries.
    let depots = [0u32, (n / 3) as u32, (n / 2) as u32, (n - 1) as u32];
    let mut total_steps = 0;
    let t = Instant::now();
    for &depot in &depots {
        let out = pre.sssp(depot);
        total_steps += out.stats.steps;
        let reachable = out.dist.iter().filter(|&&d| d != INF).count();
        println!(
            "depot {depot:>6}: {} junctions reachable, {} steps, farthest travel time {}",
            reachable,
            out.stats.steps,
            out.dist.iter().filter(|&&d| d != INF).max().unwrap()
        );
    }
    let rs_time = t.elapsed().as_secs_f64();

    // Compare against per-source Dijkstra.
    let t = Instant::now();
    for &depot in &depots {
        let _ = baselines::dijkstra_default(&g, depot);
    }
    let dj_time = t.elapsed().as_secs_f64();
    println!(
        "\n{} sources: radius stepping {rs_time:.2}s ({} steps total) vs sequential Dijkstra {dj_time:.2}s",
        depots.len(),
        total_steps
    );
    println!("(steps ≈ parallel depth: each step's relaxations all run concurrently)");

    // Route between two specific junctions.
    let out = pre.sssp(depots[0]);
    if let Some(route) = out.path_to(&pre.graph, depots[3]) {
        println!(
            "route depot {} -> {}: {} segments, travel time {}",
            depots[0],
            depots[3],
            route.len() - 1,
            out.dist[depots[3] as usize]
        );
    }
}
