//! Road-network routing: the paper's motivating workload for multi-source
//! use. Preprocessing is paid once at `build()`; every subsequent source
//! amortises it (§5.4: "since preprocessing is only run once, if Sssp will
//! be run from multiple sources, we suggest increasing ρ"), and a
//! `BatchPlan` fans the depots out across the thread pool — each pool
//! task reusing one `SolverScratch`, with per-batch aggregated stats.
//!
//! ```text
//! cargo run --release --example road_trip
//! ```

use std::time::Instant;

use radius_stepping::prelude::*;

fn main() {
    // A synthetic road network (~40k junctions, avg degree ≈ 2.8 like
    // SNAP's roadNet-PA) with travel-time weights.
    let topology = graph::gen::road_network(200, 7);
    let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 8);
    let n = g.num_vertices();
    println!("road network: {} junctions, {} road segments", n, g.num_edges());

    // Build once with a bigger ball since we'll query many sources.
    let t = Instant::now();
    let solver = SolverBuilder::new(&g)
        .preprocess(PreprocessConfig::new(1, 96))
        .record_parents(true)
        .build();
    println!(
        "build ({}): {:.2}s, +{} edges",
        solver.name(),
        t.elapsed().as_secs_f64(),
        solver.graph().num_edges() - g.num_edges()
    );

    // A fleet of depots runs shortest paths to plan deliveries — one
    // parallel batch over the shared preprocessed structure. BatchPlan
    // dedups repeated depots and reuses one scratch per pool worker.
    let depots = [0u32, (n / 3) as u32, (n / 2) as u32, (n - 1) as u32, 0u32];
    let t = Instant::now();
    let outcome = BatchPlan::new(&depots).execute(&*solver);
    let rs_time = t.elapsed().as_secs_f64();
    for (out, &depot) in outcome.results.iter().zip(&depots) {
        let reachable = out.dist.iter().filter(|&&d| d != INF).count();
        println!(
            "depot {depot:>6}: {} junctions reachable, {} steps, farthest travel time {}",
            reachable,
            out.stats.steps,
            out.dist.iter().filter(|&&d| d != INF).max().unwrap()
        );
    }
    let total_steps = outcome.stats.steps;
    println!(
        "batch: {} requested, {} unique solved ({} deduped), {} warm scratch reuses",
        outcome.stats.solves,
        outcome.stats.unique_solves,
        outcome.stats.solves - outcome.stats.unique_solves,
        outcome.stats.scratch_reuses,
    );

    // Compare against per-source sequential Dijkstra via the same trait.
    let dijkstra =
        SolverBuilder::new(&g).algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary }).build();
    let t = Instant::now();
    for &depot in &depots {
        let _ = dijkstra.solve(depot);
    }
    let dj_time = t.elapsed().as_secs_f64();
    println!(
        "\n{} sources: radius stepping batch {rs_time:.2}s ({} steps total) vs sequential Dijkstra {dj_time:.2}s",
        depots.len(),
        total_steps
    );
    println!("(steps ≈ parallel depth: each step's relaxations all run concurrently)");

    // Route between two specific junctions: goal-bounded solve + the
    // recorded shortest-path tree.
    let out = solver.solve_to_goal(depots[0], depots[3]);
    if let Some(route) = out.extract_path(depots[3]) {
        println!(
            "route depot {} -> {}: {} segments, travel time {} ({} steps, early exit)",
            depots[0],
            depots[3],
            route.len() - 1,
            out.dist[depots[3] as usize],
            out.stats.steps
        );
    }
}
