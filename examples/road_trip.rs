//! Road-network routing: the paper's motivating workload for multi-source
//! use. Preprocessing is paid once at `build()`; every subsequent source
//! amortises it (§5.4: "since preprocessing is only run once, if Sssp will
//! be run from multiple sources, we suggest increasing ρ"), and a
//! `QueryBatch` fans the depots out across the thread pool — each pool
//! task reusing one pre-warmed `SolverScratch`, with per-batch aggregated
//! stats.
//!
//! ```text
//! cargo run --release --example road_trip
//! ```

use std::time::Instant;

use radius_stepping::prelude::*;

fn main() {
    // A synthetic road network (~40k junctions, avg degree ≈ 2.8 like
    // SNAP's roadNet-PA) with travel-time weights.
    let topology = graph::gen::road_network(200, 7);
    let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 8);
    let n = g.num_vertices();
    println!("road network: {} junctions, {} road segments", n, g.num_edges());

    // Build once with a bigger ball since we'll query many sources.
    let t = Instant::now();
    let solver = SolverBuilder::new(&g)
        .preprocess(PreprocessConfig::new(1, 96))
        .record_parents(true)
        .build();
    println!(
        "build ({}): {:.2}s, +{} edges",
        solver.name(),
        t.elapsed().as_secs_f64(),
        solver.graph().num_edges() - g.num_edges()
    );

    // A fleet of depots runs shortest paths to plan deliveries — one
    // parallel batch over the shared preprocessed structure. QueryBatch
    // dedups repeated depots and reuses one scratch per pool worker.
    let depots = [0u32, (n / 3) as u32, (n / 2) as u32, (n - 1) as u32, 0u32];
    let t = Instant::now();
    let outcome = QueryBatch::from_sources(&depots).execute(&*solver);
    let rs_time = t.elapsed().as_secs_f64();
    for (out, &depot) in outcome.responses.iter().zip(&depots) {
        let reachable = out.dist().iter().filter(|&&d| d != INF).count();
        println!(
            "depot {depot:>6}: {} junctions reachable, {} steps, farthest travel time {}",
            reachable,
            out.stats().steps,
            out.dist().iter().filter(|&&d| d != INF).max().unwrap()
        );
    }
    let total_steps = outcome.stats.steps;
    println!(
        "batch: {} requested, {} unique solved ({} deduped), {} warm scratch reuses",
        outcome.stats.solves,
        outcome.stats.unique_solves,
        outcome.stats.solves - outcome.stats.unique_solves,
        outcome.stats.scratch_reuses,
    );

    // Compare against per-source sequential Dijkstra via the same trait.
    let dijkstra =
        SolverBuilder::new(&g).algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary }).build();
    let t = Instant::now();
    for &depot in &depots {
        let _ = dijkstra.solve(depot);
    }
    let dj_time = t.elapsed().as_secs_f64();
    println!(
        "\n{} sources: radius stepping batch {rs_time:.2}s ({} steps total) vs sequential Dijkstra {dj_time:.2}s",
        depots.len(),
        total_steps
    );
    println!("(steps ≈ parallel depth: each step's relaxations all run concurrently)");

    // Route between two specific junctions: a point-to-point query with
    // goal-bounded early exit and inline parent recording, on a warm
    // scratch (how a serving loop would run it).
    let mut scratch = SolverScratch::new();
    solver.warm_scratch(&mut scratch);
    let trip =
        solver.execute(&Query::point_to_point(depots[0], depots[3]).with_paths(), &mut scratch);
    // The solver is preprocessed, but goal_path unrolls shortcut hops at
    // extraction: every hop below is a real road segment of the input
    // network, and the travel time still telescopes exactly.
    if let Some(route) = trip.goal_path() {
        println!(
            "route depot {} -> {}: {} road segments, travel time {} \
             ({} steps, early exit, warm={})",
            depots[0],
            depots[3],
            route.len() - 1,
            trip.goal_distance().unwrap(),
            trip.stats().steps,
            trip.stats().scratch_reused,
        );
    }
}
