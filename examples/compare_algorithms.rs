//! Runs every SSSP algorithm in the workspace on one graph, verifies they
//! agree exactly, and prints their step/phase structure side by side —
//! the paper's Table 1 in miniature, measured instead of asymptotic.
//!
//! ```text
//! cargo run --release --example compare_algorithms
//! ```

use std::time::Instant;

use radius_stepping::prelude::*;
use rs_core::{radius_stepping_with, EngineConfig, EngineKind};
use rs_ds::{DaryHeap, FibonacciHeap, PairingHeap};

fn main() {
    let topology = graph::gen::grid2d(120, 120);
    let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 99);
    let s = 0u32;
    println!("graph: 120x120 grid, weights U[1,10^4], source {s}\n");

    let reference = baselines::dijkstra_default(&g, s);

    let report = |name: &str, f: &mut dyn FnMut() -> (Vec<Dist>, String)| {
        let t = Instant::now();
        let (dist, shape) = f();
        let elapsed = t.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(dist, reference, "{name} disagrees with Dijkstra");
        println!("{name:<34} {elapsed:>8.1} ms   {shape}");
    };

    report("dijkstra (4-ary heap)", &mut || {
        (baselines::dijkstra::<DaryHeap>(&g, s), "sequential".into())
    });
    report("dijkstra (pairing heap)", &mut || {
        (baselines::dijkstra::<PairingHeap>(&g, s), "sequential".into())
    });
    report("dijkstra (fibonacci heap)", &mut || {
        (baselines::dijkstra::<FibonacciHeap>(&g, s), "sequential".into())
    });
    report("bellman-ford (parallel)", &mut || {
        let (d, rounds) = baselines::bellman_ford(&g, s);
        (d, format!("{rounds} rounds"))
    });
    report("delta-stepping (delta=2000)", &mut || {
        let out = baselines::delta_stepping(&g, s, 2000);
        (out.dist, format!("{} buckets, {} phases", out.buckets, out.phases))
    });

    // Radius stepping across its radii spectrum (§3: r=0 Dijkstra-like,
    // r=∞ Bellman-Ford-like, preprocessed r_ρ in between).
    report("radius stepping (r=0)", &mut || {
        let out = radius_stepping(&g, &RadiiSpec::Zero, s);
        (out.dist, format!("{} steps", out.stats.steps))
    });
    report("radius stepping (r=inf)", &mut || {
        let out = radius_stepping(&g, &RadiiSpec::Infinite, s);
        (out.dist, format!("{} steps, {} substeps", out.stats.steps, out.stats.substeps))
    });

    let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 64));
    println!(
        "\npreprocessed (k=1, rho=64): +{} edges ({:.2}x m)",
        pre.stats.effective_new_edges,
        pre.stats.added_edge_factor()
    );
    report("radius stepping (frontier engine)", &mut || {
        let out = pre.sssp(s);
        (out.dist, format!("{} steps, ≤{} substeps/step", out.stats.steps, out.stats.max_substeps_in_step))
    });
    report("radius stepping (BST engine)", &mut || {
        let out = pre.sssp_with(s, EngineKind::Bst, EngineConfig::default());
        (out.dist, format!("{} steps (identical by construction)", out.stats.steps))
    });
    // The engines' step sequences are equal — show it directly.
    let f = radius_stepping_with(
        &pre.graph,
        &RadiiSpec::PerVertex(&pre.radii),
        s,
        EngineKind::Frontier,
        EngineConfig::with_trace(),
    );
    let b = radius_stepping_with(
        &pre.graph,
        &RadiiSpec::PerVertex(&pre.radii),
        s,
        EngineKind::Bst,
        EngineConfig::with_trace(),
    );
    let fd: Vec<Dist> = f.stats.trace.unwrap().iter().map(|t| t.d_i).collect();
    let bd: Vec<Dist> = b.stats.trace.unwrap().iter().map(|t| t.d_i).collect();
    assert_eq!(fd, bd);
    println!("\nall algorithms agree; engines produce identical round-distance sequences ({} steps)", fd.len());
}
