//! Runs every SSSP algorithm in the workspace on one graph — all built
//! through `SolverBuilder`, all used through the `SsspSolver` trait —
//! verifies they agree exactly, and prints their step/substep structure
//! side by side: the paper's Table 1 in miniature, measured instead of
//! asymptotic.
//!
//! ```text
//! cargo run --release --example compare_algorithms
//! ```

use std::time::Instant;

use radius_stepping::prelude::*;

fn main() {
    let topology = graph::gen::grid2d(120, 120);
    let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 99);
    let s = 0u32;
    println!("graph: 120x120 grid, weights U[1,10^4], source {s}\n");

    // Every point on the paper's algorithm spectrum, one builder each.
    // (§3: r=0 is Dijkstra-like, r=∞ Bellman-Ford-like, r=∆ almost
    // ∆-stepping; preprocessed r_rho(v) gives the paper's bounds.)
    let spectrum: Vec<(Algorithm, Option<PreprocessConfig>)> = vec![
        (Algorithm::Dijkstra { heap: HeapKind::Dary }, None),
        (Algorithm::Dijkstra { heap: HeapKind::Pairing }, None),
        (Algorithm::Dijkstra { heap: HeapKind::Fibonacci }, None),
        (Algorithm::BellmanFord, None),
        (Algorithm::DeltaStepping { delta: 2_000 }, None),
        (Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero }, None),
        (Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Infinite }, None),
        (
            Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero },
            Some(PreprocessConfig::new(1, 64)),
        ),
        (
            Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Zero },
            Some(PreprocessConfig::new(1, 64)),
        ),
    ];

    let reference = SolverBuilder::new(&g)
        .algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary })
        .build()
        .solve(s)
        .dist;

    println!("{:<42} {:>9}   shape", "solver", "time");
    for (algorithm, preprocess) in spectrum {
        let mut builder = SolverBuilder::new(&g).algorithm(algorithm);
        if let Some(cfg) = preprocess {
            builder = builder.preprocess(cfg);
        }
        let solver = builder.build();
        let t = Instant::now();
        let out = solver.solve(s);
        let elapsed = t.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(out.dist, reference, "{} disagrees with Dijkstra", solver.name());
        println!(
            "{:<42} {elapsed:>6.1} ms   {} steps, {} substeps (max {}/step)",
            solver.name(),
            out.stats.steps,
            out.stats.substeps,
            out.stats.max_substeps_in_step
        );
    }

    // The two radius-stepping engines produce identical step sequences —
    // show it directly on the preprocessed graph.
    let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 64));
    let trace_of = |engine| {
        core::radius_stepping_with(
            &pre.graph,
            &RadiiSpec::PerVertex(&pre.radii),
            s,
            engine,
            EngineConfig::with_trace(),
        )
        .stats
        .trace
        .unwrap()
        .iter()
        .map(|t| t.d_i)
        .collect::<Vec<Dist>>()
    };
    let fd = trace_of(EngineKind::Frontier);
    let bd = trace_of(EngineKind::Bst);
    assert_eq!(fd, bd);
    println!(
        "\nall algorithms agree; engines produce identical round-distance sequences ({} steps)",
        fd.len()
    );
}
