//! Unweighted traversal of a scale-free webgraph — the workload where §5.3
//! found radius stepping shines ("Radius-Stepping can reduce the number of
//! steps by 15x by adding no more than m edges" on webgraphs).
//!
//! Shows BFS-mode radius stepping through the unified solver API: hop
//! distances over a Barabási–Albert graph, sweeping ρ to watch the step
//! count (the depth proxy) collapse while work stays near-linear.
//!
//! ```text
//! cargo run --release --example web_hops
//! ```

use radius_stepping::prelude::*;
use rs_core::preprocess::compute_radii;

fn main() {
    // ~50k pages, 7 links per page, power-law degree (hubs).
    let g = graph::gen::scale_free(50_000, 7, 1234);
    let max_deg = (0..g.num_vertices() as u32).map(|v| g.degree(v)).max().unwrap();
    println!(
        "webgraph: {} pages, {} links, max degree {} (hub)",
        g.num_vertices(),
        g.num_edges(),
        max_deg
    );

    let source = 0u32;
    let bfs = SolverBuilder::new(&g).algorithm(Algorithm::Bfs).build();
    let bfs_out = bfs.solve(source);
    let bfs_rounds = bfs_out.stats.steps;
    println!("\nparallel BFS: {bfs_rounds} rounds (one per level)");

    println!("\n rho | steps | reduction vs BFS | relaxations");
    println!("-----+-------+------------------+------------");
    for rho in [1usize, 10, 100, 1000] {
        let radii = if rho == 1 { Radii::Zero } else { Radii::PerVertex(compute_radii(&g, rho)) };
        let solver = SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii })
            .build();
        let out = solver.solve(source);
        assert_eq!(out.dist, bfs_out.dist, "hop distances must match BFS");
        println!(
            "{rho:>4} | {:>5} | {:>16.2} | {:>10}",
            out.stats.steps,
            bfs_rounds as f64 / out.stats.steps as f64,
            out.stats.relaxations
        );
    }
    println!("\nhop distances verified identical to BFS at every rho");
}
