//! Quickstart: preprocess a weighted graph once, then answer
//! shortest-path queries from any source with radius stepping.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use radius_stepping::prelude::*;

fn main() {
    // A 200×200 grid with the paper's weight model (uniform ints in
    // [1, 10^4]); think of it as a synthetic street network.
    let topology = graph::gen::grid2d(200, 200);
    let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 42);
    println!("graph: n = {}, m = {} undirected edges", g.num_vertices(), g.num_edges());

    // One-time preprocessing: (k = 1, ρ = 64)-graph. Higher ρ ⇒ fewer,
    // bigger steps (more parallelism); higher k ⇒ fewer shortcut edges but
    // more substeps. §5.4 recommends k ∈ {3, 4}, ρ ∈ [50, 100] in practice.
    let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 64));
    println!(
        "preprocessing: +{} shortcut edges ({:.2}x of m), radii like r(0) = {}",
        pre.stats.effective_new_edges,
        pre.stats.added_edge_factor(),
        pre.radii[0]
    );

    // Solve from a corner.
    let source = 0;
    let out = pre.sssp(source);
    let far = (g.num_vertices() - 1) as u32;
    println!(
        "sssp from {source}: dist to opposite corner = {}, {} steps, ≤ {} substeps/step",
        out.dist[far as usize], out.stats.steps, out.stats.max_substeps_in_step
    );

    // Reconstruct one route.
    let path = out.path_to(&pre.graph, far).expect("grid is connected");
    println!("route to {far}: {} hops (first 6: {:?} ...)", path.len() - 1, &path[..6.min(path.len())]);

    // Cross-check against the sequential baseline.
    let reference = baselines::dijkstra_default(&g, source);
    assert_eq!(out.dist, reference, "radius stepping must match Dijkstra exactly");
    println!("verified: distances identical to Dijkstra");
}
