//! Quickstart: build one solver (preprocessing attached), then answer
//! shortest-path queries from any source through the unified
//! `SsspSolver` interface.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use radius_stepping::prelude::*;

fn main() {
    // A 200×200 grid with the paper's weight model (uniform ints in
    // [1, 10^4]); think of it as a synthetic street network.
    let topology = graph::gen::grid2d(200, 200);
    let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 42);
    println!("graph: n = {}, m = {} undirected edges", g.num_vertices(), g.num_edges());

    // One solver, one-time preprocessing: (k = 1, ρ = 64)-graph. Higher
    // ρ ⇒ fewer, bigger steps (more parallelism); higher k ⇒ fewer
    // shortcut edges but more substeps. §5.4 recommends k ∈ {3, 4},
    // ρ ∈ [50, 100] in practice.
    let solver = SolverBuilder::new(&g)
        .preprocess(PreprocessConfig::new(1, 64))
        .record_parents(true)
        .build();
    println!(
        "solver: {} (+{} shortcut edges over the input)",
        solver.name(),
        solver.graph().num_edges() - g.num_edges()
    );

    // Solve from a corner.
    let source = 0;
    let out = solver.solve(source);
    let far = (g.num_vertices() - 1) as u32;
    println!(
        "sssp from {source}: dist to opposite corner = {}, {} steps, ≤ {} substeps/step",
        out.dist[far as usize], out.stats.steps, out.stats.max_substeps_in_step
    );

    // Reconstruct one route from the recorded shortest-path tree.
    let path = out.extract_path(far).expect("grid is connected");
    println!(
        "route to {far}: {} hops (first 6: {:?} ...)",
        path.len() - 1,
        &path[..6.min(path.len())]
    );

    // Point-to-point query: early termination once the goal settles.
    let mid = (g.num_vertices() / 2) as u32;
    let bounded = solver.solve_to_goal(source, mid);
    println!(
        "goal-bounded solve to {mid}: {} steps (vs {} for the full solve)",
        bounded.stats.steps, out.stats.steps
    );
    assert_eq!(bounded.dist[mid as usize], out.dist[mid as usize]);

    // Cross-check against the sequential baseline, same interface.
    let dijkstra =
        SolverBuilder::new(&g).algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary }).build();
    assert_eq!(out.dist, dijkstra.solve(source).dist, "must match Dijkstra exactly");
    println!("verified: distances identical to Dijkstra");
}
