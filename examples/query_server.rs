//! Serving mixed query traffic: the unified query plane end to end.
//!
//! A query server pays three one-time costs — building the graph, the
//! (k, ρ)-preprocessing, and warming a `SolverScratch` per worker — and
//! then answers every request on reused state through the one entry point,
//! `SsspSolver::execute`:
//!
//! * **Mixed batches** go through `QueryBatch`: realistic traffic is
//!   dominated by point-to-point requests (origin → destination, often
//!   with a path wanted) with occasional single-source analytics queries
//!   mixed in. Duplicates — popular origin/destination pairs — are
//!   answered once and cloned (dedup by full query key), unique queries
//!   fan out over the thread pool with one pre-warmed scratch per pool
//!   task, and the per-batch `BatchStats` aggregate reports the
//!   goal-bounded traffic split alongside steps and the warm/cold scratch
//!   counters.
//! * **Single requests** on a dedicated worker loop reuse one long-lived
//!   scratch; `warm_scratch` pre-sizes it so even the *first* request
//!   runs allocation-free, and point-to-point requests settle only the
//!   region the goal needs (early exit) while recording parents inline —
//!   `goal_path()` costs O(path length).
//!
//! ```text
//! cargo run --release --example query_server
//! ```

use std::time::Instant;

use radius_stepping::prelude::*;

fn main() {
    // One-time: a ~46k-junction road network with travel-time weights.
    let topology = graph::gen::road_network(220, 11);
    let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 5);
    let n = g.num_vertices() as u32;
    println!("graph: {} vertices, {} edges", n, g.num_edges());

    // One-time: preprocessing sized for a many-query workload (§5.4).
    let t = Instant::now();
    let solver = SolverBuilder::new(&g).preprocess(PreprocessConfig::new(1, 64)).build();
    println!("build ({}): {:.2}s\n", solver.name(), t.elapsed().as_secs_f64());

    // --- Mixed batch endpoint -------------------------------------------
    // 256 requests, deliberately skewed like real query logs: a hot
    // origin/destination pair dominates the point-to-point traffic, most
    // riders want the route itself, and a few analytics jobs ask for full
    // single-source solves.
    let queries: Vec<Query> = (0..256u32)
        .map(|i| match i % 8 {
            0 => Query::point_to_point(42, 917 % n).with_paths(), // the hot pair
            7 => Query::single_source((i * 977) % n),             // analytics
            _ => {
                let (a, b) = ((i * 977) % n, (i * 31 + 7) % n);
                if i % 2 == 0 {
                    Query::point_to_point(a, b).with_paths()
                } else {
                    Query::point_to_point(a, b)
                }
            }
        })
        .collect();
    let batch = QueryBatch::new(&queries);
    println!(
        "batch: {} requests, {} unique ({} served by dedup)",
        batch.len(),
        batch.unique_queries().len(),
        batch.deduplicated()
    );
    let t = Instant::now();
    let outcome = batch.execute(&*solver);
    println!(
        "answered in {:.2}s on {} pool threads: {} point-to-point ({} goals reached), \
         {} single-source, {} cold solves, {} warm reuses, mean {:.1} steps/request",
        t.elapsed().as_secs_f64(),
        par::num_threads(),
        outcome.stats.point_to_point,
        outcome.stats.goals_reached,
        outcome.stats.solves - outcome.stats.point_to_point,
        outcome.stats.cold_solves,
        outcome.stats.scratch_reuses,
        outcome.stats.mean_steps(),
    );
    // Paths from a preprocessed solver are on the shortcut-augmented
    // (k, ρ)-graph: distance-exact, but a hop may be a shortcut edge.
    let hot = &outcome.responses[0];
    let route = hot.goal_path().expect("road network is connected");
    println!(
        "hot pair 42 -> {}: travel time {}, {} hops on the (k, rho)-graph, \
         {} steps (vs full-solve fan-out)\n",
        917 % n,
        hot.goal_distance().unwrap(),
        route.len() - 1,
        hot.stats().steps,
    );

    // --- Single-request worker loop -------------------------------------
    // A long-lived worker owns one scratch, pre-warmed so request #1 is
    // already allocation-free; every request records parents inline and
    // extracts only the goal path.
    let mut scratch = SolverScratch::new();
    solver.warm_scratch(&mut scratch);
    let t = Instant::now();
    let mut warm = 0u32;
    let mut segments = 0usize;
    for i in 0..64u32 {
        let (a, b) = ((i * 131) % n, (i * 271 + 13) % n);
        let resp = solver.execute(&Query::point_to_point(a, b).with_paths(), &mut scratch);
        warm += u32::from(resp.stats().scratch_reused);
        segments += resp.goal_path().map_or(0, |p| p.len() - 1);
    }
    println!(
        "worker loop: 64 point-to-point requests in {:.2}s, {} on warm scratch \
         (scratch: {} solves, {} reuses), {} route hops returned",
        t.elapsed().as_secs_f64(),
        warm,
        scratch.solves(),
        scratch.reuses(),
        segments,
    );
}
