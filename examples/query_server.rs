//! Serving mixed query traffic: the unified query plane end to end.
//!
//! A query server pays three one-time costs — building the graph, the
//! (k, ρ)-preprocessing, and warming a `SolverScratch` per worker — and
//! then answers every request on reused state through the one entry point,
//! `SsspSolver::execute`:
//!
//! * **Streamed mixed batches** go through `QueryBatch::stream`: realistic
//!   traffic mixes point-to-point requests (origin → destination, often
//!   with a path wanted), one-to-many fan-outs (one origin, many
//!   candidate destinations — k goals for the price of one solve),
//!   occasional many-to-many distance tables (dispatch matrices), and
//!   single-source analytics solves. Duplicates — popular
//!   origin/destination pairs, permuted goal sets — are answered once and
//!   cloned (dedup by canonical query key); responses are **delivered as
//!   each solve completes**, so a slow analytics query never blocks the
//!   fast routing replies, and the per-shape latency report below comes
//!   straight from the delivery stream.
//! * **Single requests** on a dedicated worker loop reuse one long-lived
//!   scratch; `warm_scratch` pre-sizes it so even the *first* request runs
//!   allocation-free, and goal-bounded requests settle only the region
//!   their goals need (early exit) while recording parents inline —
//!   `goal_path()` costs O(path length) and, preprocessing included,
//!   returns **exact input-graph routes** (shortcut hops are unrolled).
//!
//! ```text
//! cargo run --release --example query_server
//! ```
//!
//! This example is the in-process shape of the pattern. The
//! production-shaped version — bounded admission lanes per query
//! shape, an epoch-versioned response cache, latency-histogram SLOs,
//! retry-hinted load shedding — lives in `crates/serve`
//! (`cargo run --release -p rs_serve --bin rs-serve`).

use std::time::Instant;

use radius_stepping::prelude::*;

fn main() {
    // One-time: a ~46k-junction road network with travel-time weights.
    let topology = graph::gen::road_network(220, 11);
    let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 5);
    let n = g.num_vertices() as u32;
    println!("graph: {} vertices, {} edges", n, g.num_edges());

    // One-time: preprocessing sized for a many-query workload (§5.4).
    let t = Instant::now();
    let solver = SolverBuilder::new(&g).preprocess(PreprocessConfig::new(1, 64)).build();
    println!("build ({}): {:.2}s\n", solver.name(), t.elapsed().as_secs_f64());

    // --- Streamed mixed batch endpoint ----------------------------------
    // 256 requests, deliberately skewed like real query logs: a hot
    // origin/destination pair dominates the point-to-point traffic, ride
    // brokers fan one origin out to 8 candidate destinations, dispatchers
    // ask for small distance tables, and a few analytics jobs ask for full
    // single-source solves.
    let fan_goals = |i: u32| -> Vec<u32> { (0..8).map(|j| (i * 611 + j * 97 + 5) % n).collect() };
    let queries: Vec<Query> = (0..256u32)
        .map(|i| match i % 8 {
            0 => Query::point_to_point(42, 917 % n).with_paths(), // the hot pair
            5 => Query::one_to_many((i * 131) % n, fan_goals(i)).with_paths(),
            6 => Query::many_to_many(
                vec![(i * 7) % n, (i * 7 + 1) % n],
                vec![(i * 13) % n, (i * 13 + 2) % n, (i * 13 + 4) % n],
            ),
            7 => Query::single_source((i * 977) % n), // analytics
            _ => {
                let (a, b) = ((i * 977) % n, (i * 31 + 7) % n);
                if i % 2 == 0 {
                    Query::point_to_point(a, b).with_paths()
                } else {
                    Query::point_to_point(a, b)
                }
            }
        })
        .collect();
    let batch = QueryBatch::new(&queries);
    println!(
        "batch: {} requests, {} unique ({} served by dedup)",
        batch.len(),
        batch.unique_queries().len(),
        batch.deduplicated()
    );

    // Per-shape delivery telemetry, filled by the streaming sink as each
    // solve completes: (label, delivered count, worst latency-to-delivery).
    let t = Instant::now();
    let mut first_response_at: Option<f64> = None;
    let mut shapes: [(&str, usize, f64); 4] = [
        ("point-to-point", 0, 0.0),
        ("one-to-many", 0, 0.0),
        ("many-to-many", 0, 0.0),
        ("single-source", 0, 0.0),
    ];
    let stats = batch.stream(&*solver, |_slot, resp| {
        let at = t.elapsed().as_secs_f64();
        first_response_at.get_or_insert(at);
        let lane = match &resp.query.shape {
            QueryShape::PointToPoint { .. } => 0,
            QueryShape::OneToMany { .. } => 1,
            QueryShape::ManyToMany { .. } => 2,
            QueryShape::SingleSource { .. } => 3,
        };
        shapes[lane].1 += 1;
        shapes[lane].2 = shapes[lane].2.max(at);
    });
    let total = t.elapsed().as_secs_f64();
    println!(
        "streamed in {total:.2}s on {} pool threads (first response after {:.3}s): \
         {} physical solves for {} requests ({:.2} solves/request), \
         {} goals reached / {} requested, {} cold solves, {} warm reuses",
        par::num_threads(),
        first_response_at.unwrap_or(total),
        stats.executed_solves,
        stats.solves,
        stats.mean_solves_per_query(),
        stats.goals_reached,
        stats.goals_requested,
        stats.cold_solves,
        stats.scratch_reuses,
    );
    for (label, count, worst) in shapes {
        println!("  {label:>14}: {count:3} delivered, last at {worst:.3}s");
    }

    // Paths from the preprocessed solver are exact input-graph routes:
    // shortcut hops are unrolled at extraction, so every hop below is an
    // edge of the *input* road network.
    let hot =
        solver.execute(&Query::point_to_point(42, 917 % n).with_paths(), &mut SolverScratch::new());
    let route = hot.goal_path().expect("road network is connected");
    let hops_exist = route.windows(2).all(|w| g.arc_weight(w[0], w[1]).is_some());
    println!(
        "\nhot pair 42 -> {}: travel time {}, {} input-graph hops (all real edges: {}), \
         {} steps (vs full-solve fan-out)\n",
        917 % n,
        hot.goal_distance().unwrap(),
        route.len() - 1,
        hops_exist,
        hot.stats().steps,
    );
    assert!(hops_exist, "preprocessed goal_path must ride input edges only");

    // --- Single-request worker loop -------------------------------------
    // A long-lived worker owns one scratch, pre-warmed so request #1 is
    // already allocation-free; every request records parents inline and
    // extracts only the goal paths. One-to-many requests answer a whole
    // candidate set per solve.
    let mut scratch = SolverScratch::new();
    solver.warm_scratch(&mut scratch);
    let t = Instant::now();
    let mut warm = 0u32;
    let mut segments = 0usize;
    let mut goals_answered = 0usize;
    for i in 0..64u32 {
        let (a, b) = ((i * 131) % n, (i * 271 + 13) % n);
        if i % 4 == 3 {
            let goals = fan_goals(i);
            let resp = solver.execute(&Query::one_to_many(a, goals).with_paths(), &mut scratch);
            warm += u32::from(resp.stats().scratch_reused);
            goals_answered += resp.goal_distances().iter().filter(|d| d.is_some()).count();
        } else {
            let resp = solver.execute(&Query::point_to_point(a, b).with_paths(), &mut scratch);
            warm += u32::from(resp.stats().scratch_reused);
            goals_answered += usize::from(resp.goal_distance().is_some());
            segments += resp.goal_path().map_or(0, |p| p.len() - 1);
        }
    }
    println!(
        "worker loop: 64 requests (48 point-to-point + 16 one-to-many) in {:.2}s, \
         {} on warm scratch (scratch: {} solves, {} reuses), \
         {} destinations answered, {} route hops returned",
        t.elapsed().as_secs_f64(),
        warm,
        scratch.solves(),
        scratch.reuses(),
        goals_answered,
        segments,
    );
}
