//! Serving many queries: the batch API end to end.
//!
//! A query server pays three one-time costs — building the graph, the
//! (k, ρ)-preprocessing, and warming a `SolverScratch` per worker — and
//! then answers every request on reused state:
//!
//! * **Batch requests** go through `BatchPlan`: duplicate sources are
//!   answered once and cloned (think: popular origins in a routing
//!   service), unique solves fan out over the thread pool with one scratch
//!   per pool task, and the per-batch `BatchStats` aggregate reports steps,
//!   relaxations and the warm/cold scratch split.
//! * **Single requests** on a dedicated worker loop reuse one long-lived
//!   scratch via `solve_with_scratch` — after the first request, no
//!   working distance array, bitset, heap or bucket queue is allocated
//!   again (`StepStats::scratch_reused`).
//!
//! ```text
//! cargo run --release --example query_server
//! ```

use std::time::Instant;

use radius_stepping::prelude::*;

fn main() {
    // One-time: a ~46k-junction road network with travel-time weights.
    let topology = graph::gen::road_network(220, 11);
    let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 5);
    let n = g.num_vertices() as u32;
    println!("graph: {} vertices, {} edges", n, g.num_edges());

    // One-time: preprocessing sized for a many-source workload (§5.4).
    let t = Instant::now();
    let solver = SolverBuilder::new(&g).preprocess(PreprocessConfig::new(1, 64)).build();
    println!("build ({}): {:.2}s\n", solver.name(), t.elapsed().as_secs_f64());

    // --- Batch endpoint -------------------------------------------------
    // 256 requests, deliberately skewed: a few hot origins dominate, as in
    // real query logs. BatchPlan solves each distinct origin once.
    let requests: Vec<VertexId> =
        (0..256u32).map(|i| if i % 3 == 0 { 42 } else { (i * 977) % n }).collect();
    let plan = BatchPlan::new(&requests);
    println!(
        "batch: {} requests, {} unique origins ({} served by dedup)",
        plan.len(),
        plan.unique_sources().len(),
        plan.deduplicated()
    );
    let t = Instant::now();
    let outcome = plan.execute(&*solver);
    println!(
        "answered in {:.2}s on {} pool threads: {} cold solves (one per worker scratch), \
         {} warm reuses, mean {:.1} steps/request",
        t.elapsed().as_secs_f64(),
        par::num_threads(),
        outcome.stats.cold_solves,
        outcome.stats.scratch_reuses,
        outcome.stats.mean_steps(),
    );
    let sample = &outcome.results[0];
    println!(
        "sample answer (origin {}): {} reachable, farthest travel time {}\n",
        requests[0],
        sample.dist.iter().filter(|&&d| d != INF).count(),
        sample.dist.iter().filter(|&&d| d != INF).max().unwrap()
    );

    // --- Single-request worker loop -------------------------------------
    // A long-lived worker owns one scratch and streams requests through
    // it; everything after request #1 runs allocation-free.
    let mut scratch = SolverScratch::new();
    let t = Instant::now();
    let mut warm = 0u32;
    for i in 0..64u32 {
        let origin = (i * 131) % n;
        let out = solver.solve_with_scratch(origin, &mut scratch);
        warm += u32::from(out.stats.scratch_reused);
    }
    println!(
        "worker loop: 64 requests in {:.2}s, {} on warm scratch (scratch: {} solves, {} reuses)",
        t.elapsed().as_secs_f64(),
        warm,
        scratch.solves(),
        scratch.reuses(),
    );
}
