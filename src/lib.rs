//! # radius-stepping
//!
//! A complete implementation of **"Parallel Shortest-Paths Using Radius
//! Stepping"** (Blelloch, Gu, Sun, Tangwongsan; SPAA 2016): the
//! radius-stepping SSSP algorithm, its (k, ρ)-graph preprocessing, every
//! substrate it depends on, and the baselines it is evaluated against.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`core`] (`rs_core`) — the paper's contribution: radius-stepping
//!   engines and preprocessing.
//! * [`graph`] (`rs_graph`) — CSR graphs, generators, weight models, I/O.
//! * [`baselines`] (`rs_baselines`) — Dijkstra, BFS, Bellman–Ford,
//!   ∆-stepping.
//! * [`ds`] (`rs_ds`) — decrease-key heaps, bucket queue, join-based treap.
//! * [`par`] (`rs_par`) — parallel primitives (scan, pack, write-min,
//!   frontiers).
//!
//! ## Quickstart
//!
//! ```
//! use radius_stepping::prelude::*;
//!
//! // A weighted graph (here: a 2D grid with the paper's weight model).
//! let topology = graph::gen::grid2d(40, 40);
//! let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 1);
//!
//! // One-time preprocessing: build a (k=1, rho=32)-graph + vertex radii.
//! let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 32));
//!
//! // Per-source solve.
//! let result = pre.sssp(0);
//! assert_eq!(result.dist[0], 0);
//!
//! // Same answer as Dijkstra.
//! assert_eq!(result.dist, baselines::dijkstra_default(&g, 0));
//! ```

pub use rs_baselines as baselines;
pub use rs_core as core;
pub use rs_ds as ds;
pub use rs_graph as graph;
pub use rs_par as par;

/// Convenience imports for applications.
pub mod prelude {
    pub use crate::{baselines, core, ds, graph, par};
    pub use rs_core::preprocess::{PreprocessConfig, Preprocessed, ShortcutHeuristic};
    pub use rs_core::{radius_stepping, RadiiSpec, SsspResult, StepStats};
    pub use rs_graph::{CsrGraph, Dist, EdgeListBuilder, VertexId, Weight, WeightModel, INF};
}
