//! # radius-stepping
//!
//! A complete implementation of **"Parallel Shortest-Paths Using Radius
//! Stepping"** (Blelloch, Gu, Sun, Tangwongsan; SPAA 2016): the
//! radius-stepping SSSP algorithm, its (k, ρ)-graph preprocessing, every
//! substrate it depends on, and the baselines it is evaluated against —
//! all behind one unified [`SsspSolver`](prelude::SsspSolver) interface.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`core`] (`rs_core`) — the paper's contribution: radius-stepping
//!   engines, preprocessing, and the solver trait + builder.
//! * [`graph`] (`rs_graph`) — CSR graphs, generators, weight models, I/O.
//! * [`baselines`] (`rs_baselines`) — Dijkstra, BFS, Bellman–Ford,
//!   ∆-stepping, and their solver adapters.
//! * [`ds`] (`rs_ds`) — decrease-key heaps, bucket queue, join-based treap.
//! * [`par`] (`rs_par`) — parallel primitives (scan, pack, write-min,
//!   frontiers).
//!
//! ## Quickstart
//!
//! Every algorithm is constructed through [`SolverBuilder`](prelude::SolverBuilder)
//! and answers [`Query`](prelude::Query)s through the
//! [`SsspSolver`](prelude::SsspSolver) trait's one entry point,
//! [`execute`](prelude::SsspSolver::execute):
//!
//! ```
//! use radius_stepping::prelude::*;
//!
//! // A weighted graph (here: a 2D grid with the paper's weight model).
//! let topology = graph::gen::grid2d(40, 40);
//! let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 1);
//!
//! // Radius stepping with one-time (k = 1, rho = 32) preprocessing.
//! let solver = SolverBuilder::new(&g)
//!     .algorithm(Algorithm::RadiusStepping {
//!         engine: EngineKind::Frontier,
//!         radii: Radii::Zero, // replaced by r_rho(v) from preprocessing
//!     })
//!     .preprocess(PreprocessConfig::new(1, 32))
//!     .build();
//!
//! // Point-to-point serving: goal-bounded early exit, inline parent
//! // recording, and one long-lived scratch reused across requests.
//! let mut scratch = SolverScratch::new();
//! solver.warm_scratch(&mut scratch); // even the first query runs warm
//! let trip = solver.execute(&Query::point_to_point(0, 820).with_paths(), &mut scratch);
//! let route = trip.goal_path().expect("grid is connected");
//! assert_eq!(route[0], 0);
//! assert!(trip.stats().scratch_reused);
//!
//! // Full single-source solves ride the same entry point (the legacy
//! // solve / solve_to_goal / solve_with_scratch wrappers still work).
//! let full = solver.execute(&Query::single_source(0), &mut scratch);
//! assert_eq!(trip.goal_distance(), Some(full.dist()[820]));
//! assert_eq!(full.dist(), solver.solve(0).dist);
//!
//! // Fan-out routing: one solve answers a whole candidate set, with
//! // per-goal distances and paths bit-identical to the point-to-point
//! // answers (see also Query::many_to_many for distance tables).
//! let fan = solver.execute(&Query::one_to_many(0, [820, 44, 1570]), &mut scratch);
//! assert_eq!(fan.goal_distances()[0], trip.goal_distance());
//!
//! // Mixed-shape batches fan out across the thread pool: duplicates are
//! // answered once (dedup by canonical query key — permuted goal sets
//! // share a slot, observationally invisible), one pre-warmed
//! // SolverScratch per pool worker, per-batch aggregates. Responses can
//! // also be streamed as each solve completes: QueryBatch::stream(sink).
//! let queries = [
//!     Query::single_source(0),
//!     Query::point_to_point(40, 1599),
//!     Query::point_to_point(40, 1599), // dedup'd
//!     Query::one_to_many(7, [9, 1599]),
//!     Query::one_to_many(7, [1599, 9]), // dedup'd (canonical goals)
//! ];
//! let outcome = QueryBatch::new(&queries).execute(&*solver);
//! assert_eq!(outcome.stats.unique_solves, 3);
//! assert_eq!(outcome.stats.point_to_point, 2);
//! assert_eq!(outcome.stats.one_to_many, 2);
//! assert_eq!(outcome.responses[1].dist(), outcome.responses[2].dist());
//!
//! // Same answer as the sequential baseline, through the same interface.
//! let dijkstra = SolverBuilder::new(&g)
//!     .algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary })
//!     .build();
//! assert_eq!(full.dist(), dijkstra.solve(0).dist);
//! ```

pub use rs_baselines as baselines;
pub use rs_core as core;
pub use rs_ds as ds;
pub use rs_graph as graph;
pub use rs_par as par;

/// Convenience imports for applications.
pub mod prelude {
    pub use crate::{baselines, core, ds, graph, par};
    pub use rs_baselines::solver::BuildSolver;
    pub use rs_core::preprocess::{
        PreprocessConfig, Preprocessed, ShortcutExpander, ShortcutHeuristic,
    };
    pub use rs_core::solver::{
        Algorithm, BatchOutcome, BatchStats, HeapKind, P2pMode, Query, QueryBatch, QueryResponse,
        QueryShape, Radii, SolverBuilder, SolverConfig, SsspSolver,
    };
    pub use rs_core::{
        radius_stepping, EngineConfig, EngineKind, Goals, RadiiSpec, SolverScratch, SsspResult,
        StepStats,
    };
    pub use rs_graph::{CsrGraph, Dist, EdgeListBuilder, VertexId, Weight, WeightModel, INF};
}
