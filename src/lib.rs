//! # radius-stepping
//!
//! A complete implementation of **"Parallel Shortest-Paths Using Radius
//! Stepping"** (Blelloch, Gu, Sun, Tangwongsan; SPAA 2016): the
//! radius-stepping SSSP algorithm, its (k, ρ)-graph preprocessing, every
//! substrate it depends on, and the baselines it is evaluated against —
//! all behind one unified [`SsspSolver`](prelude::SsspSolver) interface.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`core`] (`rs_core`) — the paper's contribution: radius-stepping
//!   engines, preprocessing, and the solver trait + builder.
//! * [`graph`] (`rs_graph`) — CSR graphs, generators, weight models, I/O.
//! * [`baselines`] (`rs_baselines`) — Dijkstra, BFS, Bellman–Ford,
//!   ∆-stepping, and their solver adapters.
//! * [`ds`] (`rs_ds`) — decrease-key heaps, bucket queue, join-based treap.
//! * [`par`] (`rs_par`) — parallel primitives (scan, pack, write-min,
//!   frontiers).
//!
//! ## Quickstart
//!
//! Every algorithm is constructed through [`SolverBuilder`](prelude::SolverBuilder)
//! and used through the [`SsspSolver`](prelude::SsspSolver) trait:
//!
//! ```
//! use radius_stepping::prelude::*;
//!
//! // A weighted graph (here: a 2D grid with the paper's weight model).
//! let topology = graph::gen::grid2d(40, 40);
//! let g = graph::weights::reweight(&topology, WeightModel::paper_weighted(), 1);
//!
//! // Radius stepping with one-time (k = 1, rho = 32) preprocessing.
//! let solver = SolverBuilder::new(&g)
//!     .algorithm(Algorithm::RadiusStepping {
//!         engine: EngineKind::Frontier,
//!         radii: Radii::Zero, // replaced by r_rho(v) from preprocessing
//!     })
//!     .preprocess(PreprocessConfig::new(1, 32))
//!     .record_parents(true)
//!     .build();
//!
//! // Per-source solve, with uniform path reconstruction.
//! let result = solver.solve(0);
//! assert_eq!(result.dist[0], 0);
//! let route = result.extract_path(1599).expect("grid is connected");
//! assert_eq!(route[0], 0);
//!
//! // Point-to-point query with early termination.
//! let bounded = solver.solve_to_goal(0, 820);
//! assert_eq!(bounded.dist[820], result.dist[820]);
//!
//! // Multi-source fan-out across the thread pool: duplicates answered
//! // once (dedup is observationally invisible), one reusable
//! // SolverScratch per pool worker — no per-source working-array
//! // allocation after warmup. BatchPlan::execute additionally reports
//! // per-batch aggregates (BatchStats).
//! let batch = solver.solve_batch(&[0, 40, 1599, 40]);
//! assert_eq!(batch[2].dist[0], result.dist[1599]);
//! assert_eq!(batch[1].dist, batch[3].dist);
//! let outcome = BatchPlan::new(&[0, 40, 40]).execute(&*solver);
//! assert_eq!(outcome.stats.unique_solves, 2);
//!
//! // Same answer as the sequential baseline, through the same interface.
//! let dijkstra = SolverBuilder::new(&g)
//!     .algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary })
//!     .build();
//! assert_eq!(result.dist, dijkstra.solve(0).dist);
//! ```

pub use rs_baselines as baselines;
pub use rs_core as core;
pub use rs_ds as ds;
pub use rs_graph as graph;
pub use rs_par as par;

/// Convenience imports for applications.
pub mod prelude {
    pub use crate::{baselines, core, ds, graph, par};
    pub use rs_baselines::solver::BuildSolver;
    pub use rs_core::preprocess::{PreprocessConfig, Preprocessed, ShortcutHeuristic};
    pub use rs_core::solver::{
        Algorithm, BatchOutcome, BatchPlan, BatchStats, HeapKind, Radii, SolverBuilder,
        SolverConfig, SsspSolver,
    };
    pub use rs_core::{
        radius_stepping, EngineConfig, EngineKind, RadiiSpec, SolverScratch, SsspResult, StepStats,
    };
    pub use rs_graph::{CsrGraph, Dist, EdgeListBuilder, VertexId, Weight, WeightModel, INF};
}
