//! Property-based tests for the query plane: random graphs, random mixed
//! [`Query`] batches — duplicate-heavy, shapes and output options drawn
//! independently — must behave exactly like per-query fresh executions,
//! and the batch bookkeeping must stay consistent.

use proptest::prelude::*;
use std::collections::HashSet;

use radius_stepping::prelude::*;

/// Random connected weighted graph: a random spanning tree plus extra
/// random edges (same construction as `proptest_sssp`).
fn arb_connected_graph() -> impl Strategy<Value = CsrGraph> {
    (3usize..40, proptest::collection::vec((0u32..1000, 0u32..1000, 1u32..50), 0..120), 1u32..50)
        .prop_map(|(n, extra, tree_w)| {
            let mut b = EdgeListBuilder::new(n);
            for v in 1..n as u32 {
                let parent = (v.wrapping_mul(2654435761) >> 7) % v;
                b.add_edge(v, parent, (v % tree_w) + 1);
            }
            for (u, v, w) in extra {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

/// Raw query material: `(shape selector, source, goals, want_paths)` —
/// duplicated by drawing from a small id space, reduced mod `n` at use.
/// Shape: 0 = single-source, 1 = point-to-point, 2 = one-to-many
/// (goal-list length 0..4, so permuted/duplicated goal sets occur).
fn arb_raw_queries() -> impl Strategy<Value = Vec<(u8, u32, Vec<u32>, bool)>> {
    proptest::collection::vec(
        (0u8..3, 0u32..1000, proptest::collection::vec(0u32..1000, 0..4), any::<bool>()),
        0..20,
    )
}

fn build_queries(raw: &[(u8, u32, Vec<u32>, bool)], n: u32) -> Vec<Query> {
    raw.iter()
        .map(|(shape, s, goals, paths)| {
            let goals: Vec<u32> = goals.iter().map(|&t| t % n).collect();
            let q = match shape {
                0 => Query::single_source(s % n),
                1 => Query::point_to_point(s % n, goals.first().copied().unwrap_or(0)),
                _ => Query::one_to_many(s % n, goals),
            };
            if *paths {
                q.with_paths()
            } else {
                q
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Mixed batches with duplicate queries: responses equal fresh
    // per-query executions slot for slot, and the stats ledger adds up —
    // for radius stepping (both general engines), Dijkstra, ∆-stepping
    // and Bellman–Ford.
    #[test]
    fn mixed_batches_match_fresh_executions(
        g in arb_connected_graph(),
        raw in arb_raw_queries(),
        algo_pick in 0usize..5,
    ) {
        let n = g.num_vertices() as u32;
        let queries = build_queries(&raw, n);
        let algorithm = [
            Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(40) },
            Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Constant(25) },
            Algorithm::Dijkstra { heap: HeapKind::Dary },
            Algorithm::DeltaStepping { delta: 60 },
            Algorithm::BellmanFord,
        ][algo_pick].clone();
        let solver = SolverBuilder::new(&g).algorithm(algorithm).build();

        let batch = QueryBatch::new(&queries);
        // Dedup keys are canonical: goal sets sorted + deduplicated.
        let unique: HashSet<Query> = queries.iter().map(|q| q.canonical()).collect();
        prop_assert_eq!(batch.len(), queries.len());
        prop_assert_eq!(batch.unique_queries().len(), unique.len());
        prop_assert_eq!(batch.deduplicated(), queries.len() - unique.len());

        let outcome = batch.execute(&*solver);
        prop_assert_eq!(outcome.responses.len(), queries.len());
        prop_assert_eq!(outcome.stats.solves, queries.len());
        prop_assert_eq!(outcome.stats.unique_solves, unique.len());
        // Every shape here is single-solve (no tables in this strategy).
        prop_assert_eq!(outcome.stats.executed_solves, unique.len());
        prop_assert_eq!(
            outcome.stats.cold_solves + outcome.stats.scratch_reuses,
            outcome.stats.executed_solves
        );
        let p2p = queries.iter().filter(|q| q.is_point_to_point()).count();
        prop_assert_eq!(outcome.stats.point_to_point, p2p);
        let fan = queries.iter().filter(|q| matches!(q.shape, QueryShape::OneToMany { .. })).count();
        prop_assert_eq!(outcome.stats.one_to_many, fan);
        // The graph is connected, so every requested goal is reached.
        let goals_total: usize = queries.iter().map(|q| q.goals().len()).sum();
        prop_assert_eq!(outcome.stats.goals_requested, goals_total);
        prop_assert_eq!(outcome.stats.goals_reached, goals_total);

        for (resp, q) in outcome.responses.iter().zip(&queries) {
            prop_assert_eq!(&resp.query, q);
            let fresh = solver.execute(q, &mut SolverScratch::new());
            prop_assert_eq!(resp.dist(), fresh.dist(), "{:?}", q.shape);
            if q.is_goal_bounded() {
                let full = solver.solve(q.source());
                for &goal in q.goals() {
                    // Every goal settled exactly (full solve = reference).
                    prop_assert_eq!(
                        resp.dist()[goal as usize],
                        full.dist[goal as usize],
                        "{:?}", q.shape
                    );
                    if q.want_paths {
                        // Inline parents telescope along every goal path.
                        let path = resp.goal_path_to(goal).expect("connected graph");
                        prop_assert_eq!(path[0], q.source());
                        prop_assert_eq!(*path.last().unwrap(), goal);
                        let mut acc = 0u64;
                        for w in path.windows(2) {
                            let weight = solver.graph().arc_weight(w[0], w[1]);
                            prop_assert!(weight.is_some(), "path edge {}->{} missing", w[0], w[1]);
                            acc += weight.unwrap() as u64;
                        }
                        prop_assert_eq!(acc, resp.dist()[goal as usize]);
                    }
                }
            }
        }
    }

    // The fan-out contract, fuzzed: a one-to-many solve is bit-identical,
    // per goal, to the point-to-point queries it replaces — distances and
    // paths — across algorithm families.
    #[test]
    fn one_to_many_equals_per_goal_point_to_point(
        g in arb_connected_graph(),
        source in 0u32..1000,
        goals in proptest::collection::vec(0u32..1000, 0..6),
        algo_pick in 0usize..5,
    ) {
        let n = g.num_vertices() as u32;
        let source = source % n;
        let goals: Vec<u32> = goals.into_iter().map(|t| t % n).collect();
        let algorithm = [
            Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(40) },
            Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Constant(25) },
            Algorithm::Dijkstra { heap: HeapKind::Dary },
            Algorithm::DeltaStepping { delta: 60 },
            Algorithm::BellmanFord,
        ][algo_pick].clone();
        let solver = SolverBuilder::new(&g).algorithm(algorithm).build();

        let mut scratch = SolverScratch::new();
        let fan = solver.execute(&Query::one_to_many(source, goals.clone()).with_paths(), &mut scratch);
        prop_assert_eq!(scratch.solves(), 1);
        for &goal in &goals {
            let p2p = solver.execute(
                &Query::point_to_point(source, goal).with_paths(),
                &mut SolverScratch::new(),
            );
            prop_assert_eq!(
                fan.dist()[goal as usize],
                p2p.dist()[goal as usize],
                "goal {} distance", goal
            );
            prop_assert_eq!(fan.goal_path_to(goal), p2p.goal_path(), "goal {} path", goal);
        }
    }

    // The table contract, fuzzed: many-to-many rows equal their row-wise
    // one-to-many decomposition.
    #[test]
    fn many_to_many_equals_rowwise_one_to_many(
        g in arb_connected_graph(),
        sources in proptest::collection::vec(0u32..1000, 1..4),
        goals in proptest::collection::vec(0u32..1000, 0..4),
        paths in any::<bool>(),
    ) {
        let n = g.num_vertices() as u32;
        let sources: Vec<u32> = sources.into_iter().map(|s| s % n).collect();
        let goals: Vec<u32> = goals.into_iter().map(|t| t % n).collect();
        let solver = SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Frontier,
                radii: Radii::Constant(30),
            })
            .build();
        let mut q = Query::many_to_many(sources.clone(), goals.clone());
        if paths {
            q = q.with_paths();
        }
        let table = solver.execute(&q, &mut SolverScratch::new());
        prop_assert_eq!(table.rows().len(), sources.len());
        for (i, &s) in sources.iter().enumerate() {
            let mut row_q = Query::one_to_many(s, goals.clone());
            if paths {
                row_q = row_q.with_paths();
            }
            let row = solver.execute(&row_q, &mut SolverScratch::new());
            prop_assert_eq!(&table.rows()[i].dist, &row.result().dist, "row {}", i);
            if paths {
                for &goal in &goals {
                    prop_assert_eq!(
                        table.path_in_row(i, goal),
                        row.goal_path_to(goal),
                        "row {} goal {}", i, goal
                    );
                }
            }
        }
    }

    // Streaming and materialised batch execution are bit-identical per
    // slot (stats included) — the migration guarantee for
    // `QueryBatch::execute` callers moving to `stream`.
    #[test]
    fn streaming_matches_materialised_batches(
        g in arb_connected_graph(),
        raw in arb_raw_queries(),
    ) {
        let n = g.num_vertices() as u32;
        let queries = build_queries(&raw, n);
        let solver = SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Frontier,
                radii: Radii::Constant(35),
            })
            .build();
        let materialised = QueryBatch::new(&queries).execute(&*solver);
        let mut streamed: Vec<Option<QueryResponse>> = vec![None; queries.len()];
        let stats = QueryBatch::new(&queries).stream(&*solver, |slot, resp| {
            assert!(streamed[slot].is_none(), "slot {slot} delivered twice");
            streamed[slot] = Some(resp);
        });
        prop_assert_eq!(&stats, &materialised.stats);
        for (slot, resp) in streamed.into_iter().enumerate() {
            let resp = resp.expect("every slot delivered");
            let reference = &materialised.responses[slot];
            prop_assert_eq!(&resp.query, &reference.query);
            prop_assert_eq!(resp.dist(), reference.dist());
            prop_assert_eq!(
                resp.result().parent.as_ref(),
                reference.result().parent.as_ref()
            );
        }
    }

    // One scratch, interleaved mixed queries: results stay bit-identical
    // to fresh executions no matter the order (stale-state fuzzing for the
    // goal-bounded path, the inline-parent buffers and the epoch reset).
    #[test]
    fn interleaved_mixed_queries_never_leak_scratch_state(
        g in arb_connected_graph(),
        raw in arb_raw_queries(),
    ) {
        let n = g.num_vertices() as u32;
        let queries = build_queries(&raw, n);
        let solver = SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Frontier,
                radii: Radii::Constant(25),
            })
            .build();
        let mut scratch = SolverScratch::new();
        for q in &queries {
            let warm = solver.execute(q, &mut scratch);
            let fresh = solver.execute(q, &mut SolverScratch::new());
            prop_assert_eq!(warm.dist(), fresh.dist(), "{:?}", q.shape);
            prop_assert_eq!(
                warm.result().parent.is_some(),
                q.want_paths,
                "want_paths must always produce a parent tree"
            );
        }
    }
}
