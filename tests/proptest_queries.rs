//! Property-based tests for the query plane: random graphs, random mixed
//! [`Query`] batches — duplicate-heavy, shapes and output options drawn
//! independently — must behave exactly like per-query fresh executions,
//! and the batch bookkeeping must stay consistent.

use proptest::prelude::*;
use std::collections::HashSet;

use radius_stepping::prelude::*;

/// Random connected weighted graph: a random spanning tree plus extra
/// random edges (same construction as `proptest_sssp`).
fn arb_connected_graph() -> impl Strategy<Value = CsrGraph> {
    (3usize..40, proptest::collection::vec((0u32..1000, 0u32..1000, 1u32..50), 0..120), 1u32..50)
        .prop_map(|(n, extra, tree_w)| {
            let mut b = EdgeListBuilder::new(n);
            for v in 1..n as u32 {
                let parent = (v.wrapping_mul(2654435761) >> 7) % v;
                b.add_edge(v, parent, (v % tree_w) + 1);
            }
            for (u, v, w) in extra {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

/// Raw query material: `(p2p?, source, goal, want_paths)` — duplicated by
/// drawing from a small id space, reduced mod `n` at use.
fn arb_raw_queries() -> impl Strategy<Value = Vec<(bool, u32, u32, bool)>> {
    proptest::collection::vec((any::<bool>(), 0u32..1000, 0u32..1000, any::<bool>()), 0..20)
}

fn build_queries(raw: &[(bool, u32, u32, bool)], n: u32) -> Vec<Query> {
    raw.iter()
        .map(|&(p2p, s, t, paths)| {
            let q =
                if p2p { Query::point_to_point(s % n, t % n) } else { Query::single_source(s % n) };
            if paths {
                q.with_paths()
            } else {
                q
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Mixed batches with duplicate queries: responses equal fresh
    // per-query executions slot for slot, and the stats ledger adds up —
    // for radius stepping (both general engines), Dijkstra, ∆-stepping
    // and Bellman–Ford.
    #[test]
    fn mixed_batches_match_fresh_executions(
        g in arb_connected_graph(),
        raw in arb_raw_queries(),
        algo_pick in 0usize..5,
    ) {
        let n = g.num_vertices() as u32;
        let queries = build_queries(&raw, n);
        let algorithm = [
            Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(40) },
            Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Constant(25) },
            Algorithm::Dijkstra { heap: HeapKind::Dary },
            Algorithm::DeltaStepping { delta: 60 },
            Algorithm::BellmanFord,
        ][algo_pick].clone();
        let solver = SolverBuilder::new(&g).algorithm(algorithm).build();

        let batch = QueryBatch::new(&queries);
        let unique: HashSet<Query> = queries.iter().copied().collect();
        prop_assert_eq!(batch.len(), queries.len());
        prop_assert_eq!(batch.unique_queries().len(), unique.len());
        prop_assert_eq!(batch.deduplicated(), queries.len() - unique.len());

        let outcome = batch.execute(&*solver);
        prop_assert_eq!(outcome.responses.len(), queries.len());
        prop_assert_eq!(outcome.stats.solves, queries.len());
        prop_assert_eq!(outcome.stats.unique_solves, unique.len());
        prop_assert_eq!(
            outcome.stats.cold_solves + outcome.stats.scratch_reuses,
            outcome.stats.unique_solves
        );
        let p2p = queries.iter().filter(|q| q.is_point_to_point()).count();
        prop_assert_eq!(outcome.stats.point_to_point, p2p);
        // The graph is connected, so every delivered goal is reached.
        prop_assert_eq!(outcome.stats.goals_reached, p2p);

        for (resp, q) in outcome.responses.iter().zip(&queries) {
            prop_assert_eq!(&resp.query, q);
            let fresh = solver.execute(q, &mut SolverScratch::new());
            prop_assert_eq!(resp.dist(), fresh.dist(), "{:?}", q.shape);
            if let Some(goal) = q.goal() {
                // Goal settled exactly (the full solve is the reference).
                prop_assert_eq!(
                    resp.dist()[goal as usize],
                    solver.solve(q.source()).dist[goal as usize],
                    "{:?}", q.shape
                );
                if q.want_paths {
                    // Inline parents telescope along the goal path.
                    let path = resp.goal_path().expect("connected graph");
                    prop_assert_eq!(path[0], q.source());
                    prop_assert_eq!(*path.last().unwrap(), goal);
                    let mut acc = 0u64;
                    for w in path.windows(2) {
                        let weight = solver.graph().arc_weight(w[0], w[1]);
                        prop_assert!(weight.is_some(), "path edge {}->{} missing", w[0], w[1]);
                        acc += weight.unwrap() as u64;
                    }
                    prop_assert_eq!(acc, resp.dist()[goal as usize]);
                }
            }
        }
    }

    // One scratch, interleaved mixed queries: results stay bit-identical
    // to fresh executions no matter the order (stale-state fuzzing for the
    // goal-bounded path, the inline-parent buffers and the epoch reset).
    #[test]
    fn interleaved_mixed_queries_never_leak_scratch_state(
        g in arb_connected_graph(),
        raw in arb_raw_queries(),
    ) {
        let n = g.num_vertices() as u32;
        let queries = build_queries(&raw, n);
        let solver = SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Frontier,
                radii: Radii::Constant(25),
            })
            .build();
        let mut scratch = SolverScratch::new();
        for q in &queries {
            let warm = solver.execute(q, &mut scratch);
            let fresh = solver.execute(q, &mut SolverScratch::new());
            prop_assert_eq!(warm.dist(), fresh.dist(), "{:?}", q.shape);
            prop_assert_eq!(
                warm.result.parent.is_some(),
                q.want_paths,
                "want_paths must always produce a parent tree"
            );
        }
    }
}
