//! Integration-scale checks of the paper's empirical claims (§5), at
//! reduced size: the trends the tables report must reproduce.

use radius_stepping::prelude::*;
use rs_bench::experiments::shortcuts::shortcut_counts;
use rs_bench::experiments::steps::mean_steps;
use rs_bench::sample_sources;

#[test]
fn unweighted_steps_inverse_in_rho() {
    // Figure 4: "the average number of steps is inversely proportional
    // to ρ" (up to the log factor). Check monotone decrease plus a
    // super-constant total reduction on a grid.
    let g = graph::gen::grid2d(50, 50);
    let sources = sample_sources(2500, 3, 9);
    let series: Vec<f64> =
        [1usize, 2, 10, 50, 200].iter().map(|&rho| mean_steps(&g, rho, &sources)).collect();
    assert!(
        series.windows(2).all(|w| w[0] >= w[1] - 1e-9),
        "steps must not increase with rho: {series:?}"
    );
    assert!(series[0] / series[4] > 5.0, "rho=200 should cut steps >5x: {series:?}");
}

#[test]
fn weighted_rho_one_is_nearly_one_step_per_vertex() {
    // Table 6's ρ=1 row: with random weights almost every vertex has a
    // distinct distance, so Dijkstra-mode takes ≈ n steps.
    let g =
        graph::weights::reweight(&graph::gen::grid2d(30, 30), WeightModel::paper_weighted(), 31);
    let sources = sample_sources(900, 2, 4);
    let steps = mean_steps(&g, 1, &sources);
    assert!(steps > 0.95 * 899.0, "expected ≈ n-1 steps, got {steps}");
}

#[test]
fn weighted_small_rho_collapses_steps() {
    // Table 7: ρ=10 already reduces weighted steps by ~3 orders of
    // magnitude at paper scale; at our scale demand a ≥ 20x factor.
    let g = graph::weights::reweight(&graph::gen::grid2d(40, 40), WeightModel::paper_weighted(), 7);
    let sources = sample_sources(1600, 2, 5);
    let s1 = mean_steps(&g, 1, &sources);
    let s10 = mean_steps(&g, 10, &sources);
    assert!(s1 / s10 > 20.0, "weighted reduction too small: {s1}/{s10}");
}

#[test]
fn webgraphs_need_few_steps_even_at_rho_one() {
    // §5.3: scale-free graphs have small hop diameter, so even ρ=1 BFS
    // takes few steps while road/grid graphs take Θ(√n).
    let web = graph::gen::scale_free(4000, 7, 3);
    let grid = graph::gen::grid2d(63, 64);
    let sw = mean_steps(&web, 1, &sample_sources(4000, 3, 1));
    let sg = mean_steps(&grid, 1, &sample_sources(4032, 3, 1));
    assert!(sw * 4.0 < sg, "web {sw} should be ≪ grid {sg}");
}

#[test]
fn greedy_matches_dp_on_regular_graphs_but_not_webgraphs() {
    // Figure 3's two regimes: on grids the heuristics are close; on
    // webgraphs DP wins decisively.
    let grid = graph::gen::grid2d(40, 40);
    let (g_grid, d_grid) = shortcut_counts(&grid, 30, &[3]);
    assert!(g_grid[0] > 0);
    assert!(
        (g_grid[0] as f64) < 4.0 * d_grid[0].max(1) as f64,
        "grid: greedy {g_grid:?} vs dp {d_grid:?} should be same order"
    );
    let web = graph::gen::scale_free(3000, 3, 8);
    let (g_web, d_web) = shortcut_counts(&web, 300, &[3]);
    assert!(
        (d_web[0] as f64) < 0.5 * g_web[0] as f64,
        "web: dp {d_web:?} should be far below greedy {g_web:?}"
    );
}

#[test]
fn substeps_track_k_across_suite() {
    // Theorem 3.2 at integration scale: run the whole preprocessed
    // pipeline on three families and watch the k+2 cap bind.
    use rs_core::preprocess::ShortcutHeuristic;
    use rs_core::{EngineConfig, EngineKind};
    for k in [1u32, 2, 3] {
        for (name, g) in [
            (
                "grid",
                graph::weights::reweight(
                    &graph::gen::grid2d(16, 16),
                    WeightModel::paper_weighted(),
                    1,
                ),
            ),
            (
                "web",
                graph::weights::reweight(
                    &graph::gen::scale_free(300, 3, 2),
                    WeightModel::paper_weighted(),
                    2,
                ),
            ),
        ] {
            let h = if k == 1 { ShortcutHeuristic::Full } else { ShortcutHeuristic::Dp };
            let pre = Preprocessed::build(&g, &PreprocessConfig { k, rho: 16, heuristic: h });
            for s in sample_sources(g.num_vertices(), 3, 3) {
                let out = pre.sssp_with(s, EngineKind::Frontier, EngineConfig::with_trace());
                assert!(
                    out.stats.max_substeps_in_step <= k as usize + 2,
                    "{name} k={k}: {}",
                    out.stats.max_substeps_in_step
                );
            }
        }
    }
}

#[test]
fn rho_two_factor_matches_paper_exactly_unweighted() {
    // Table 5 row ρ=2 is 2.00 on every graph family at paper scale; the
    // r_2 = 1 argument is scale-free, so it must hold here too.
    for g in [
        graph::gen::grid2d(35, 35),
        graph::gen::grid3d(11, 11, 10),
        graph::gen::road_network(35, 6),
    ] {
        let sources = sample_sources(g.num_vertices(), 3, 11);
        let s1 = mean_steps(&g, 1, &sources);
        let s2 = mean_steps(&g, 2, &sources);
        let factor = s1 / s2;
        assert!((factor - 2.0).abs() < 0.1, "rho=2 factor {factor} should be ≈ 2.00");
    }
}
