//! Trait-level conformance suite: every `SsspSolver` the builder can
//! construct must satisfy the same contract on random weighted and
//! unit-weight graphs —
//!
//! * `solve` produces distances identical to the Dijkstra reference;
//! * `solve_to_goal` settles the goal exactly and returns upper bounds
//!   elsewhere (the full solve's settled prefix is preserved);
//! * `solve_batch` matches per-source solves, deduplicates invisibly, and
//!   reuses per-worker scratch state (no working-array allocation after
//!   warmup);
//! * `solve_with_scratch` on one long-lived scratch is bit-identical to
//!   fresh per-source solvers, for every algorithm × heap — interleaved,
//!   so any state leaking from a previous solve is caught;
//! * recorded parent trees telescope to the distances.
//!
//! Batch results are deterministic for any pool size (the engines resolve
//! relaxation races to the same fixpoint), so the RS_NUM_THREADS=1 and
//! nproc runs of this suite in CI's `batch` job assert the sequential ==
//! parallel regression by transitivity through the per-source reference.

use radius_stepping::prelude::*;

/// Random graph families (seeded, so failures reproduce).
fn weighted_graphs() -> Vec<(String, CsrGraph)> {
    let w = |g: &CsrGraph, s| graph::weights::reweight(g, WeightModel::paper_weighted(), s);
    let mut graphs = Vec::new();
    for seed in [1u64, 2] {
        graphs.push((format!("grid/{seed}"), w(&graph::gen::grid2d(11, 12), seed)));
        graphs.push((
            format!("scale_free/{seed}"),
            w(&graph::gen::scale_free(250, 3, seed), seed + 10),
        ));
        graphs.push((
            format!("erdos_renyi/{seed}"),
            w(&graph::gen::erdos_renyi(160, 420, seed), seed + 20),
        ));
        graphs.push((format!("road/{seed}"), w(&graph::gen::road_network(13, seed), seed + 30)));
    }
    graphs
}

fn unit_graphs() -> Vec<(String, CsrGraph)> {
    vec![
        ("grid".into(), graph::gen::grid2d(14, 13)),
        ("scale_free".into(), graph::gen::scale_free(300, 4, 6)),
        ("road".into(), graph::gen::road_network(14, 8)),
    ]
}

/// Every weighted-capable algorithm family, spanning the paper's spectrum.
fn weighted_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero },
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Infinite },
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(3_000) },
        Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Constant(3_000) },
        Algorithm::Dijkstra { heap: HeapKind::Dary },
        Algorithm::Dijkstra { heap: HeapKind::Pairing },
        Algorithm::Dijkstra { heap: HeapKind::Fibonacci },
        Algorithm::DeltaStepping { delta: 1_111 },
        Algorithm::DeltaStepping { delta: 50_000 },
        Algorithm::BellmanFord,
    ]
}

/// Builders for every solver under test, including preprocessed variants.
fn weighted_solvers<'g>(g: &'g CsrGraph) -> Vec<Box<dyn SsspSolver + 'g>> {
    let mut solvers: Vec<Box<dyn SsspSolver + 'g>> = weighted_algorithms()
        .into_iter()
        .map(|algorithm| SolverBuilder::new(g).algorithm(algorithm).build())
        .collect();
    // Preprocessing attached to radius stepping (radii replaced by r_rho)
    // and to a baseline (runs on the augmented graph).
    solvers.push(SolverBuilder::new(g).preprocess(PreprocessConfig::new(1, 12)).build());
    solvers.push(
        SolverBuilder::new(g)
            .algorithm(Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Zero })
            .preprocess(PreprocessConfig::new(2, 10))
            .build(),
    );
    solvers.push(
        SolverBuilder::new(g)
            .algorithm(Algorithm::DeltaStepping { delta: 2_500 })
            .preprocess(PreprocessConfig::new(1, 8))
            .build(),
    );
    solvers
}

#[test]
fn solve_matches_dijkstra_on_weighted_graphs() {
    for (name, g) in weighted_graphs() {
        let source = (g.num_vertices() / 3) as u32;
        let reference = baselines::dijkstra_default(&g, source);
        for solver in weighted_solvers(&g) {
            assert_eq!(solver.solve(source).dist, reference, "{name}: {}", solver.name());
        }
    }
}

#[test]
fn solve_matches_bfs_on_unit_graphs() {
    for (name, g) in unit_graphs() {
        let source = 2u32;
        let reference = baselines::bfs_seq(&g, source);
        let mut solvers = weighted_solvers(&g);
        solvers.push(SolverBuilder::new(&g).algorithm(Algorithm::Bfs).build());
        solvers.push(
            SolverBuilder::new(&g)
                .algorithm(Algorithm::RadiusStepping {
                    engine: EngineKind::Unweighted,
                    radii: Radii::Constant(2),
                })
                .build(),
        );
        for solver in solvers {
            assert_eq!(solver.solve(source).dist, reference, "{name}: {}", solver.name());
        }
    }
}

#[test]
fn solve_to_goal_matches_full_solve_prefix() {
    for (name, g) in weighted_graphs().into_iter().take(4) {
        let source = 0u32;
        let n = g.num_vertices() as u32;
        for solver in weighted_solvers(&g) {
            let full = solver.solve(source);
            for goal in [source, n / 4, n / 2, n - 1] {
                let bounded = solver.solve_to_goal(source, goal);
                assert_eq!(
                    bounded.dist[goal as usize],
                    full.dist[goal as usize],
                    "{name}: {} goal {goal} must be exact",
                    solver.name()
                );
                assert_eq!(bounded.dist[source as usize], 0, "{name}: {}", solver.name());
                for (v, (&b, &f)) in bounded.dist.iter().zip(&full.dist).enumerate() {
                    assert!(
                        b >= f,
                        "{name}: {} vertex {v}: goal-bounded {b} below true distance {f}",
                        solver.name()
                    );
                }
            }
        }
    }
}

#[test]
fn solve_batch_matches_per_source_solves() {
    for (name, g) in weighted_graphs().into_iter().take(3) {
        let n = g.num_vertices() as u32;
        let sources: Vec<VertexId> = (0..12).map(|i| i * (n / 12)).collect();
        for solver in weighted_solvers(&g) {
            let batch = solver.solve_batch(&sources);
            assert_eq!(batch.len(), sources.len(), "{name}: {}", solver.name());
            for (out, &s) in batch.iter().zip(&sources) {
                assert_eq!(out.dist, solver.solve(s).dist, "{name}: {} source {s}", solver.name());
            }
        }
    }
}

/// The stale-state-leak hunt: ONE scratch serves interleaved solves from
/// different sources — with revisits — for every solver family (including
/// every Dijkstra heap). Any distance, bitset, heap or bucket entry
/// surviving a previous solve shows up as a diverging result here.
#[test]
fn interleaved_scratch_reuse_is_bit_identical() {
    let (name, g) = weighted_graphs().swap_remove(2);
    let n = g.num_vertices() as u32;
    let schedule: Vec<VertexId> = vec![0, n - 1, n / 2, 0, 7 % n, n - 1, 3 % n];
    for solver in weighted_solvers(&g) {
        let mut scratch = SolverScratch::new();
        for (i, &s) in schedule.iter().enumerate() {
            let warm = solver.solve_with_scratch(s, &mut scratch);
            let fresh = solver.solve(s);
            assert_eq!(
                warm.dist,
                fresh.dist,
                "{name}: {} solve {i} from {s} diverged on a reused scratch",
                solver.name()
            );
            assert_eq!(warm.stats.steps, fresh.stats.steps, "{name}: {}", solver.name());
            assert_eq!(warm.stats.substeps, fresh.stats.substeps, "{name}: {}", solver.name());
            assert_eq!(warm.stats.settled, fresh.stats.settled, "{name}: {}", solver.name());
            if i > 0 {
                assert!(
                    warm.stats.scratch_reused,
                    "{name}: {} solve {i} reallocated on a warm scratch",
                    solver.name()
                );
            }
        }
    }
}

/// The same hunt on unit-weight graphs for the BFS-only solvers.
#[test]
fn interleaved_scratch_reuse_on_unit_graphs() {
    let (name, g) = ("grid".to_string(), graph::gen::grid2d(14, 13));
    let solvers: Vec<Box<dyn SsspSolver>> = vec![
        SolverBuilder::new(&g).algorithm(Algorithm::Bfs).build(),
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Unweighted,
                radii: Radii::Constant(2),
            })
            .build(),
    ];
    for solver in solvers {
        let mut scratch = SolverScratch::new();
        for (i, s) in [0u32, 181, 90, 0, 11].into_iter().enumerate() {
            let warm = solver.solve_with_scratch(s, &mut scratch);
            let fresh = solver.solve(s);
            assert_eq!(warm.dist, fresh.dist, "{name}: {} solve {i}", solver.name());
            assert_eq!(warm.stats.scratch_reused, i > 0, "{name}: {}", solver.name());
        }
    }
}

/// Duplicate-heavy batches: dedup answers each duplicate by cloning one
/// unique solve, which must be observationally invisible across every
/// solver; empty and singleton batches behave.
#[test]
fn solve_batch_dedup_is_invisible() {
    let (name, g) = weighted_graphs().swap_remove(0);
    let n = g.num_vertices() as u32;
    let sources: Vec<VertexId> = vec![4, n / 2, 4, 4, n - 1, n / 2, 4];
    for solver in weighted_solvers(&g).into_iter().take(6) {
        let batch = solver.solve_batch(&sources);
        assert_eq!(batch.len(), sources.len());
        for (out, &s) in batch.iter().zip(&sources) {
            assert_eq!(out.dist, solver.solve(s).dist, "{name}: {} source {s}", solver.name());
        }
        assert!(solver.solve_batch(&[]).is_empty(), "{name}: {}", solver.name());
        let single = solver.solve_batch(&[n / 3]);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].dist, solver.solve(n / 3).dist, "{name}: {}", solver.name());
    }
}

/// The acceptance bar: a 64-source batch over a ~100k-vertex graph must
/// perform no per-source *working* distance-array allocation after warmup
/// — i.e. at most one cold solve per pool task, everything else on reused
/// scratch (`StepStats::scratch_reused`) — while staying bit-identical to
/// per-source solves. (The per-result output copy in `SsspResult::dist` is
/// the API's ownership contract and is not a working array.)
#[test]
fn batch_on_100k_graph_reuses_scratch_after_warmup() {
    let g = graph::gen::grid2d(320, 320); // 102 400 vertices
    assert!(g.num_vertices() >= 100_000);
    let sources: Vec<VertexId> =
        (0..64u32).map(|i| (i * 1_601) % g.num_vertices() as u32).collect();
    let solvers: Vec<Box<dyn SsspSolver>> = vec![
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Frontier,
                radii: Radii::Constant(40),
            })
            .build(),
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Unweighted,
                radii: Radii::Constant(40),
            })
            .build(),
        SolverBuilder::new(&g).algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary }).build(),
        SolverBuilder::new(&g).algorithm(Algorithm::DeltaStepping { delta: 3 }).build(),
    ];
    let threads = par::num_threads();
    for solver in solvers {
        let outcome = QueryBatch::from_sources(&sources).execute(&*solver);
        assert_eq!(outcome.stats.solves, 64, "{}", solver.name());
        assert_eq!(outcome.stats.unique_solves, 64, "{}", solver.name());
        assert!(
            outcome.stats.cold_solves <= threads.min(64),
            "{}: {} cold solves for {} pool tasks — per-source allocation after warmup",
            solver.name(),
            outcome.stats.cold_solves,
            threads
        );
        assert_eq!(
            outcome.stats.scratch_reuses,
            64 - outcome.stats.cold_solves,
            "{}",
            solver.name()
        );
        // Spot-check bit-identity against cold per-source solves.
        for &i in &[0usize, 31, 63] {
            assert_eq!(
                outcome.responses[i].dist(),
                solver.solve(sources[i]).dist,
                "{} source {}",
                solver.name(),
                sources[i]
            );
        }
    }
}

/// `solve_batch` must equal the sequential per-source reference at every
/// pool size. RS_NUM_THREADS is pinned once at pool creation, so the 1-
/// vs-nproc comparison runs as two processes (CI's `batch` job); within
/// one process this asserts batch == sequential reference, which makes the
/// two CI runs transitively equal.
#[test]
fn solve_batch_equals_sequential_reference_at_any_thread_count() {
    let (name, g) = weighted_graphs().swap_remove(1);
    let n = g.num_vertices() as u32;
    let sources: Vec<VertexId> = (0..16).map(|i| (i * 37) % n).collect();
    for solver in weighted_solvers(&g) {
        let reference: Vec<Vec<Dist>> =
            sources.iter().map(|&s| baselines::dijkstra_default(solver.graph(), s)).collect();
        let batch = solver.solve_batch(&sources);
        for ((out, &s), expect) in batch.iter().zip(&sources).zip(&reference) {
            assert_eq!(
                &out.dist,
                expect,
                "{name}: {} source {s} (RS_NUM_THREADS={})",
                solver.name(),
                par::num_threads()
            );
        }
    }
}

#[test]
fn recorded_parents_telescope_to_distances() {
    for (name, g) in weighted_graphs().into_iter().take(3) {
        let source = 1u32;
        for algorithm in weighted_algorithms() {
            let solver = SolverBuilder::new(&g).algorithm(algorithm).record_parents(true).build();
            let out = solver.solve(source);
            let parent = out.parent.as_ref().expect("parents recorded");
            assert_eq!(parent[source as usize], source, "{name}: {}", solver.name());
            for t in 0..g.num_vertices() as u32 {
                if out.dist[t as usize] == INF {
                    assert_eq!(parent[t as usize], u32::MAX);
                    assert!(out.extract_path(t).is_none());
                    continue;
                }
                let path = out
                    .extract_path(t)
                    .unwrap_or_else(|| panic!("{name}: {} lost path to {t}", solver.name()));
                assert_eq!(path[0], source);
                assert_eq!(*path.last().unwrap(), t);
                let mut acc = 0u64;
                for w in path.windows(2) {
                    acc += solver.graph().arc_weight(w[0], w[1]).expect("path edge") as u64;
                }
                assert_eq!(acc, out.dist[t as usize], "{name}: {} path to {t}", solver.name());
            }
        }
    }
}

#[test]
fn goal_bounded_path_extraction_reaches_goal() {
    let g =
        graph::weights::reweight(&graph::gen::grid2d(12, 12), WeightModel::paper_weighted(), 77);
    let goal = 143u32;
    for algorithm in weighted_algorithms() {
        let solver = SolverBuilder::new(&g).algorithm(algorithm).record_parents(true).build();
        let out = solver.solve_to_goal(0, goal);
        let path = out
            .extract_path(goal)
            .unwrap_or_else(|| panic!("{}: goal path must survive early exit", solver.name()));
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), goal);
        let mut acc = 0u64;
        for w in path.windows(2) {
            acc += solver.graph().arc_weight(w[0], w[1]).expect("path edge") as u64;
        }
        assert_eq!(acc, out.dist[goal as usize], "{}", solver.name());
    }
}
