//! Trait-level conformance suite: every `SsspSolver` the builder can
//! construct must satisfy the same contract on random weighted and
//! unit-weight graphs —
//!
//! * `solve` produces distances identical to the Dijkstra reference;
//! * `solve_to_goal` settles the goal exactly and returns upper bounds
//!   elsewhere (the full solve's settled prefix is preserved);
//! * `solve_batch` matches per-source solves;
//! * recorded parent trees telescope to the distances.

use radius_stepping::prelude::*;

/// Random graph families (seeded, so failures reproduce).
fn weighted_graphs() -> Vec<(String, CsrGraph)> {
    let w = |g: &CsrGraph, s| graph::weights::reweight(g, WeightModel::paper_weighted(), s);
    let mut graphs = Vec::new();
    for seed in [1u64, 2] {
        graphs.push((format!("grid/{seed}"), w(&graph::gen::grid2d(11, 12), seed)));
        graphs.push((
            format!("scale_free/{seed}"),
            w(&graph::gen::scale_free(250, 3, seed), seed + 10),
        ));
        graphs.push((
            format!("erdos_renyi/{seed}"),
            w(&graph::gen::erdos_renyi(160, 420, seed), seed + 20),
        ));
        graphs.push((format!("road/{seed}"), w(&graph::gen::road_network(13, seed), seed + 30)));
    }
    graphs
}

fn unit_graphs() -> Vec<(String, CsrGraph)> {
    vec![
        ("grid".into(), graph::gen::grid2d(14, 13)),
        ("scale_free".into(), graph::gen::scale_free(300, 4, 6)),
        ("road".into(), graph::gen::road_network(14, 8)),
    ]
}

/// Every weighted-capable algorithm family, spanning the paper's spectrum.
fn weighted_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero },
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Infinite },
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(3_000) },
        Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Constant(3_000) },
        Algorithm::Dijkstra { heap: HeapKind::Dary },
        Algorithm::Dijkstra { heap: HeapKind::Pairing },
        Algorithm::Dijkstra { heap: HeapKind::Fibonacci },
        Algorithm::DeltaStepping { delta: 1_111 },
        Algorithm::DeltaStepping { delta: 50_000 },
        Algorithm::BellmanFord,
    ]
}

/// Builders for every solver under test, including preprocessed variants.
fn weighted_solvers<'g>(g: &'g CsrGraph) -> Vec<Box<dyn SsspSolver + 'g>> {
    let mut solvers: Vec<Box<dyn SsspSolver + 'g>> = weighted_algorithms()
        .into_iter()
        .map(|algorithm| SolverBuilder::new(g).algorithm(algorithm).build())
        .collect();
    // Preprocessing attached to radius stepping (radii replaced by r_rho)
    // and to a baseline (runs on the augmented graph).
    solvers.push(SolverBuilder::new(g).preprocess(PreprocessConfig::new(1, 12)).build());
    solvers.push(
        SolverBuilder::new(g)
            .algorithm(Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Zero })
            .preprocess(PreprocessConfig::new(2, 10))
            .build(),
    );
    solvers.push(
        SolverBuilder::new(g)
            .algorithm(Algorithm::DeltaStepping { delta: 2_500 })
            .preprocess(PreprocessConfig::new(1, 8))
            .build(),
    );
    solvers
}

#[test]
fn solve_matches_dijkstra_on_weighted_graphs() {
    for (name, g) in weighted_graphs() {
        let source = (g.num_vertices() / 3) as u32;
        let reference = baselines::dijkstra_default(&g, source);
        for solver in weighted_solvers(&g) {
            assert_eq!(solver.solve(source).dist, reference, "{name}: {}", solver.name());
        }
    }
}

#[test]
fn solve_matches_bfs_on_unit_graphs() {
    for (name, g) in unit_graphs() {
        let source = 2u32;
        let reference = baselines::bfs_seq(&g, source);
        let mut solvers = weighted_solvers(&g);
        solvers.push(SolverBuilder::new(&g).algorithm(Algorithm::Bfs).build());
        solvers.push(
            SolverBuilder::new(&g)
                .algorithm(Algorithm::RadiusStepping {
                    engine: EngineKind::Unweighted,
                    radii: Radii::Constant(2),
                })
                .build(),
        );
        for solver in solvers {
            assert_eq!(solver.solve(source).dist, reference, "{name}: {}", solver.name());
        }
    }
}

#[test]
fn solve_to_goal_matches_full_solve_prefix() {
    for (name, g) in weighted_graphs().into_iter().take(4) {
        let source = 0u32;
        let n = g.num_vertices() as u32;
        for solver in weighted_solvers(&g) {
            let full = solver.solve(source);
            for goal in [source, n / 4, n / 2, n - 1] {
                let bounded = solver.solve_to_goal(source, goal);
                assert_eq!(
                    bounded.dist[goal as usize],
                    full.dist[goal as usize],
                    "{name}: {} goal {goal} must be exact",
                    solver.name()
                );
                assert_eq!(bounded.dist[source as usize], 0, "{name}: {}", solver.name());
                for (v, (&b, &f)) in bounded.dist.iter().zip(&full.dist).enumerate() {
                    assert!(
                        b >= f,
                        "{name}: {} vertex {v}: goal-bounded {b} below true distance {f}",
                        solver.name()
                    );
                }
            }
        }
    }
}

#[test]
fn solve_batch_matches_per_source_solves() {
    for (name, g) in weighted_graphs().into_iter().take(3) {
        let n = g.num_vertices() as u32;
        let sources: Vec<VertexId> = (0..12).map(|i| i * (n / 12)).collect();
        for solver in weighted_solvers(&g) {
            let batch = solver.solve_batch(&sources);
            assert_eq!(batch.len(), sources.len(), "{name}: {}", solver.name());
            for (out, &s) in batch.iter().zip(&sources) {
                assert_eq!(out.dist, solver.solve(s).dist, "{name}: {} source {s}", solver.name());
            }
        }
    }
}

#[test]
fn recorded_parents_telescope_to_distances() {
    for (name, g) in weighted_graphs().into_iter().take(3) {
        let source = 1u32;
        for algorithm in weighted_algorithms() {
            let solver = SolverBuilder::new(&g).algorithm(algorithm).record_parents(true).build();
            let out = solver.solve(source);
            let parent = out.parent.as_ref().expect("parents recorded");
            assert_eq!(parent[source as usize], source, "{name}: {}", solver.name());
            for t in 0..g.num_vertices() as u32 {
                if out.dist[t as usize] == INF {
                    assert_eq!(parent[t as usize], u32::MAX);
                    assert!(out.extract_path(t).is_none());
                    continue;
                }
                let path = out
                    .extract_path(t)
                    .unwrap_or_else(|| panic!("{name}: {} lost path to {t}", solver.name()));
                assert_eq!(path[0], source);
                assert_eq!(*path.last().unwrap(), t);
                let mut acc = 0u64;
                for w in path.windows(2) {
                    acc += solver.graph().arc_weight(w[0], w[1]).expect("path edge") as u64;
                }
                assert_eq!(acc, out.dist[t as usize], "{name}: {} path to {t}", solver.name());
            }
        }
    }
}

#[test]
fn goal_bounded_path_extraction_reaches_goal() {
    let g =
        graph::weights::reweight(&graph::gen::grid2d(12, 12), WeightModel::paper_weighted(), 77);
    let goal = 143u32;
    for algorithm in weighted_algorithms() {
        let solver = SolverBuilder::new(&g).algorithm(algorithm).record_parents(true).build();
        let out = solver.solve_to_goal(0, goal);
        let path = out
            .extract_path(goal)
            .unwrap_or_else(|| panic!("{}: goal path must survive early exit", solver.name()));
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), goal);
        let mut acc = 0u64;
        for w in path.windows(2) {
            acc += solver.graph().arc_weight(w[0], w[1]).expect("path edge") as u64;
        }
        assert_eq!(acc, out.dist[goal as usize], "{}", solver.name());
    }
}
