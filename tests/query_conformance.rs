//! Query-plane conformance suite: every `SsspSolver` the builder can
//! construct answers [`Query`]s through the single `execute` entry point,
//! and must satisfy the same contract —
//!
//! * `execute(PointToPoint)` on a warm scratch is bit-identical to the
//!   cold path, settles the goal to exactly the full solve's value, and
//!   returns upper bounds everywhere else (the full-solve prefix);
//! * inline parents telescope: along every extracted path,
//!   `dist[v] == dist[parent[v]] + w(parent[v], v)`;
//! * unreachable goals terminate (finite work, `INF` goal, no path);
//! * a pre-warmed scratch (`warm_scratch`) makes even the *first* query
//!   allocation-free for every solver whose structures it covers;
//! * the acceptance bars: zero working-structure allocations for warm
//!   point-to-point queries on a 100k-vertex graph (asserted by the
//!   scratch counters), and strictly fewer steps than the full solve on a
//!   256×256 grid.
//!
//! Like the batch suite, this runs in CI at 1 and nproc threads (the
//! `queries` job); responses are deterministic per query, so the two runs
//! assert sequential == parallel by transitivity through the per-query
//! reference.

use radius_stepping::prelude::*;

/// Weighted test graph (seeded, failures reproduce).
fn weighted(seed: u64) -> CsrGraph {
    graph::weights::reweight(&graph::gen::grid2d(11, 12), WeightModel::paper_weighted(), seed)
}

/// Every weighted-capable algorithm family, spanning the paper's spectrum
/// (all three engines, every Dijkstra heap, two ∆ widths, Bellman–Ford).
fn weighted_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero },
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Infinite },
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(3_000) },
        Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Constant(3_000) },
        Algorithm::Dijkstra { heap: HeapKind::Dary },
        Algorithm::Dijkstra { heap: HeapKind::Pairing },
        Algorithm::Dijkstra { heap: HeapKind::Fibonacci },
        Algorithm::DeltaStepping { delta: 1_111 },
        Algorithm::DeltaStepping { delta: 50_000 },
        Algorithm::BellmanFord,
    ]
}

/// Builders for every weighted solver under test, including `Preprocessed`
/// variants (one attached to radius stepping, one to a baseline).
fn weighted_solvers<'g>(g: &'g CsrGraph) -> Vec<Box<dyn SsspSolver + 'g>> {
    let mut solvers: Vec<Box<dyn SsspSolver + 'g>> = weighted_algorithms()
        .into_iter()
        .map(|algorithm| SolverBuilder::new(g).algorithm(algorithm).build())
        .collect();
    solvers.push(SolverBuilder::new(g).preprocess(PreprocessConfig::new(1, 12)).build());
    solvers.push(
        SolverBuilder::new(g)
            .algorithm(Algorithm::DeltaStepping { delta: 2_500 })
            .preprocess(PreprocessConfig::new(1, 8))
            .build(),
    );
    solvers
}

/// The unit-weight-only solvers (BFS baseline + the unweighted engine).
fn unit_solvers(g: &CsrGraph) -> Vec<Box<dyn SsspSolver + '_>> {
    vec![
        SolverBuilder::new(g).algorithm(Algorithm::Bfs).build(),
        SolverBuilder::new(g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Unweighted,
                radii: Radii::Constant(2),
            })
            .build(),
    ]
}

/// Warm-vs-cold and full-prefix battery shared by the weighted and unit
/// runs: for each solver, one long-lived scratch serves interleaved
/// point-to-point queries that must match cold executions bit-for-bit and
/// the full solve at the goal.
fn assert_point_to_point_conformance(name: &str, g: &CsrGraph, solver: &dyn SsspSolver) {
    let n = g.num_vertices() as u32;
    let mut scratch = SolverScratch::new();
    let full = solver.execute(&Query::single_source(0), &mut SolverScratch::new());
    for (i, goal) in [0u32, n / 4, n - 1, n / 2, n / 4].into_iter().enumerate() {
        let query = Query::point_to_point(0, goal);
        let warm = solver.execute(&query, &mut scratch);
        let cold = solver.execute(&query, &mut SolverScratch::new());
        assert_eq!(
            warm.dist(),
            cold.dist(),
            "{name}: {} goal {goal}: warm scratch diverged from cold path",
            solver.name()
        );
        assert_eq!(
            warm.stats().clone_with_scratch_flag(false),
            cold.stats().clone_with_scratch_flag(false),
            "{name}: {} goal {goal}: warm/cold counters diverge",
            solver.name()
        );
        assert_eq!(
            warm.dist()[goal as usize],
            full.dist()[goal as usize],
            "{name}: {} goal {goal} must be settled exactly",
            solver.name()
        );
        assert_eq!(warm.goal_distance(), Some(full.dist()[goal as usize]));
        for (v, (&b, &f)) in warm.dist().iter().zip(full.dist()).enumerate() {
            assert!(
                b >= f,
                "{name}: {} vertex {v}: goal-bounded {b} below true distance {f}",
                solver.name()
            );
        }
        if i > 0 {
            assert!(
                warm.stats().scratch_reused,
                "{name}: {} query {i} reallocated on a warm scratch",
                solver.name()
            );
        }
    }
}

/// `StepStats` comparison helper: warm and cold runs must agree on every
/// counter except the scratch flag itself.
trait CloneWithFlag {
    fn clone_with_scratch_flag(&self, flag: bool) -> StepStats;
}

impl CloneWithFlag for StepStats {
    fn clone_with_scratch_flag(&self, flag: bool) -> StepStats {
        let mut s = self.clone();
        s.scratch_reused = flag;
        s
    }
}

#[test]
fn execute_point_to_point_conformance_weighted() {
    for seed in [3u64, 8] {
        let g = weighted(seed);
        for solver in weighted_solvers(&g) {
            assert_point_to_point_conformance(&format!("grid/{seed}"), &g, &*solver);
        }
    }
}

#[test]
fn execute_point_to_point_conformance_unit() {
    let g = graph::gen::grid2d(13, 14);
    for solver in unit_solvers(&g) {
        assert_point_to_point_conformance("unit-grid", &g, &*solver);
    }
    let sf = graph::gen::scale_free(300, 4, 6);
    for solver in unit_solvers(&sf) {
        assert_point_to_point_conformance("unit-scale-free", &sf, &*solver);
    }
}

/// Inline parents on `want_paths` point-to-point queries: the extracted
/// goal path exists, starts at the source, ends at the goal, and
/// telescopes (`dist[v] == dist[parent[v]] + w`) — for every algorithm,
/// engine, and heap, on warm scratches.
#[test]
fn inline_parents_telescope_on_point_to_point_queries() {
    let g = weighted(77);
    let n = g.num_vertices() as u32;
    for solver in weighted_solvers(&g) {
        let mut scratch = SolverScratch::new();
        for goal in [n - 1, n / 3, 1, n - 1] {
            let resp = solver.execute(&Query::point_to_point(0, goal).with_paths(), &mut scratch);
            let path = resp
                .goal_path()
                .unwrap_or_else(|| panic!("{}: goal {goal} reachable but no path", solver.name()));
            assert_eq!(path[0], 0, "{}", solver.name());
            assert_eq!(*path.last().unwrap(), goal, "{}", solver.name());
            let mut acc = 0u64;
            for w in path.windows(2) {
                acc += solver.graph().arc_weight(w[0], w[1]).unwrap_or_else(|| {
                    panic!("{}: path edge {}->{} missing", solver.name(), w[0], w[1])
                }) as u64;
            }
            assert_eq!(
                acc,
                resp.dist()[goal as usize],
                "{}: goal {goal} path does not telescope",
                solver.name()
            );
            // Contract sweep: EVERY recorded parent entry telescopes to
            // the response's dist array (goal-bounded exits must not leak
            // stale claims for unsettled fringe vertices).
            let parent = resp.result().parent.as_ref().unwrap();
            for v in 0..n {
                let p = parent[v as usize];
                if p == u32::MAX || p == v {
                    continue;
                }
                let w = solver.graph().arc_weight(p, v).unwrap_or_else(|| {
                    panic!("{}: parent edge {p}->{v} not in graph", solver.name())
                }) as u64;
                assert_eq!(
                    resp.dist()[p as usize] + w,
                    resp.dist()[v as usize],
                    "{}: stale parent {p} for vertex {v} after goal-bounded exit",
                    solver.name()
                );
            }
        }
    }
    // Unit-weight solvers: hop-count telescoping.
    let g = graph::gen::grid2d(12, 12);
    for solver in unit_solvers(&g) {
        let resp =
            solver.execute(&Query::point_to_point(0, 143).with_paths(), &mut SolverScratch::new());
        let path = resp.goal_path().expect("connected grid");
        assert_eq!(path.len() as u64 - 1, resp.dist()[143], "{}: hops", solver.name());
    }
}

/// Unreachable goals terminate with `INF`, no goal distance, and no path —
/// on warm scratches, for every solver.
#[test]
fn unreachable_goals_terminate() {
    // Two components: a weighted blob plus an isolated pair.
    let mut b = EdgeListBuilder::new(8);
    b.add_edge(0, 1, 3);
    b.add_edge(1, 2, 4);
    b.add_edge(2, 3, 2);
    b.add_edge(0, 3, 9);
    b.add_edge(6, 7, 5);
    let g = b.build();
    for solver in weighted_solvers(&g) {
        let mut scratch = SolverScratch::new();
        for _ in 0..2 {
            let resp = solver.execute(&Query::point_to_point(0, 6).with_paths(), &mut scratch);
            assert_eq!(resp.dist()[6], INF, "{}", solver.name());
            assert_eq!(resp.goal_distance(), None, "{}", solver.name());
            assert!(resp.goal_path().is_none(), "{}", solver.name());
            assert_eq!(resp.dist()[0], 0, "{}", solver.name());
        }
        // A partially-unreachable goal set still terminates: the reachable
        // goals are exact, the unreachable ones report None / no path.
        let fan = solver.execute(&Query::one_to_many(0, [3, 6]).with_paths(), &mut scratch);
        assert_eq!(fan.goal_distances()[1], None, "{}", solver.name());
        assert!(fan.goal_path_to(6).is_none(), "{}", solver.name());
        assert_eq!(
            fan.goal_distances()[0],
            Some(solver.solve(0).dist[3]),
            "{}: reachable goal stays exact next to an unreachable one",
            solver.name()
        );
        assert!(fan.goal_path_to(3).is_some(), "{}", solver.name());
    }
    let mut b = EdgeListBuilder::new(5);
    b.add_edge(0, 1, 1);
    b.add_edge(1, 2, 1);
    let g = b.build();
    for solver in unit_solvers(&g) {
        let resp =
            solver.execute(&Query::point_to_point(0, 4).with_paths(), &mut SolverScratch::new());
        assert_eq!(resp.dist()[4], INF, "{}", solver.name());
        assert!(resp.goal_path().is_none(), "{}", solver.name());
    }
}

/// Satellite acceptance: after `warm_scratch`, the *first* query performs
/// zero scratch-managed allocations for every solver — each override
/// warms exactly its own structures (engine buffers and the BST treap
/// arena for radius stepping, the heap for Dijkstra, the bucket queue for
/// ∆-stepping; Bellman–Ford needs only the shared state).
#[test]
fn first_query_runs_warm_after_warm_scratch() {
    let g = weighted(5);
    let n = g.num_vertices() as u32;
    for algorithm in [
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(2_000) },
        Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Constant(2_000) },
        Algorithm::Dijkstra { heap: HeapKind::Dary },
        Algorithm::Dijkstra { heap: HeapKind::Fibonacci },
        Algorithm::DeltaStepping { delta: 1_500 },
        Algorithm::BellmanFord,
    ] {
        let solver = SolverBuilder::new(&g).algorithm(algorithm).build();
        let mut scratch = SolverScratch::new();
        solver.warm_scratch(&mut scratch);
        let first = solver.execute(&Query::point_to_point(0, n - 1), &mut scratch);
        assert!(
            first.stats().scratch_reused,
            "{}: first query after warm_scratch allocated",
            solver.name()
        );
        assert_eq!((scratch.solves(), scratch.reuses()), (1, 1), "{}", solver.name());
    }
}

/// Acceptance: `execute(PointToPoint)` on a warm scratch performs zero
/// working-structure allocations on a 100k-vertex graph — asserted by the
/// scratch counters across a stream of varied queries (`want_paths`
/// included: the parent tree is result output, not working state).
#[test]
fn warm_point_to_point_zero_allocations_on_100k_graph() {
    let g = graph::gen::grid2d(320, 320); // 102 400 vertices
    assert!(g.num_vertices() >= 100_000);
    let n = g.num_vertices() as u32;
    let solvers: Vec<Box<dyn SsspSolver>> = vec![
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Frontier,
                radii: Radii::Constant(40),
            })
            .build(),
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Bst,
                radii: Radii::Constant(40),
            })
            .build(),
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Unweighted,
                radii: Radii::Constant(40),
            })
            .build(),
        SolverBuilder::new(&g).algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary }).build(),
        SolverBuilder::new(&g).algorithm(Algorithm::DeltaStepping { delta: 3 }).build(),
    ];
    // Queries hop across the grid: different sources, goals, and path
    // requests, so any shape-dependent reallocation would surface.
    let stream: Vec<Query> = (0..8u32)
        .map(|i| {
            let (s, t) = ((i * 13_007) % n, (i * 29_501 + 640) % n);
            if i % 2 == 0 {
                Query::point_to_point(s, t).with_paths()
            } else {
                Query::point_to_point(s, t)
            }
        })
        .collect();
    for solver in solvers {
        let mut scratch = SolverScratch::new();
        solver.warm_scratch(&mut scratch);
        for (i, q) in stream.iter().enumerate() {
            let resp = solver.execute(q, &mut scratch);
            // warm_scratch covers every structure each of these solvers
            // touches (including the BST engine's treap-node arena), so
            // even query 0 must run allocation-free.
            assert!(
                resp.stats().scratch_reused,
                "{}: query {i} allocated working structures on a warm scratch",
                solver.name()
            );
            if q.want_paths {
                assert!(resp.goal_path().is_some(), "{}: query {i} lost its path", solver.name());
            }
        }
        assert_eq!(
            (scratch.solves(), scratch.reuses()),
            (stream.len() as u64, stream.len() as u64),
            "{}: every query must reuse the warm scratch",
            solver.name()
        );
    }
}

/// Acceptance: on a 256×256 grid the goal-bounded query settles the goal
/// exactly while taking strictly fewer steps than the full solve.
#[test]
fn point_to_point_takes_strictly_fewer_steps_on_256_grid() {
    let g = graph::gen::grid2d(256, 256);
    let n = g.num_vertices() as u32;
    let solvers: Vec<Box<dyn SsspSolver>> = vec![
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Frontier,
                radii: Radii::Constant(8),
            })
            .build(),
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Unweighted,
                radii: Radii::Constant(8),
            })
            .build(),
        SolverBuilder::new(&g).algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary }).build(),
    ];
    let goal = 2 * 256 + 40; // a few rows in: far from the source's far corner
    for solver in solvers {
        let mut scratch = SolverScratch::new();
        let full = solver.execute(&Query::single_source(0), &mut scratch);
        let bounded = solver.execute(&Query::point_to_point(0, goal), &mut scratch);
        assert_eq!(
            bounded.goal_distance(),
            Some(full.dist()[goal as usize]),
            "{}: goal must be exact",
            solver.name()
        );
        assert!(
            bounded.stats().steps < full.stats().steps,
            "{}: goal-bounded {} steps vs full {} — no early exit",
            solver.name(),
            bounded.stats().steps,
            full.stats().steps
        );
        assert_eq!(full.dist()[n as usize - 1], 255 + 255, "sanity: far corner");
    }
}

/// Tentpole acceptance: a `OneToMany` query with k goals performs exactly
/// **one** solve (asserted via the scratch and `BatchStats` counters) and
/// its per-goal distances and paths are bit-identical to the k
/// `PointToPoint` queries it replaces — for every algorithm, engine, and
/// heap, preprocessed solvers included.
#[test]
fn one_to_many_matches_point_to_point_bit_identically() {
    let g = weighted(21);
    let n = g.num_vertices() as u32;
    let goals = [n - 1, 3, n / 2, n / 3, 3]; // duplicates + arbitrary order
    for solver in weighted_solvers(&g) {
        let mut scratch = SolverScratch::new();
        let fan = solver.execute(&Query::one_to_many(0, goals).with_paths(), &mut scratch);
        assert_eq!(
            scratch.solves(),
            1,
            "{}: {} goals must cost exactly one solve",
            solver.name(),
            goals.len()
        );
        for &goal in &goals {
            let p2p = solver
                .execute(&Query::point_to_point(0, goal).with_paths(), &mut SolverScratch::new());
            assert_eq!(
                fan.goal_path_to(goal).as_deref(),
                p2p.goal_path().as_deref(),
                "{}: goal {goal} path diverged from the point-to-point answer",
                solver.name()
            );
            assert_eq!(
                fan.goal_distances()[goals.iter().position(|&t| t == goal).unwrap()],
                p2p.goal_distance(),
                "{}: goal {goal} distance diverged",
                solver.name()
            );
        }
        // The counters agree: a one-query batch executes one solve.
        let outcome = QueryBatch::new(&[Query::one_to_many(0, goals)]).execute(&*solver);
        assert_eq!(outcome.stats.executed_solves, 1, "{}", solver.name());
        assert_eq!(outcome.stats.one_to_many, 1, "{}", solver.name());
        assert_eq!(outcome.stats.goals_requested, goals.len(), "{}", solver.name());
        assert_eq!(outcome.stats.goals_reached, goals.len(), "{}", solver.name());
    }
    // Unit-weight solvers: same contract on hop distances.
    let g = graph::gen::grid2d(12, 12);
    for solver in unit_solvers(&g) {
        let goals = [143u32, 7, 60];
        let mut scratch = SolverScratch::new();
        let fan = solver.execute(&Query::one_to_many(0, goals).with_paths(), &mut scratch);
        assert_eq!(scratch.solves(), 1, "{}", solver.name());
        for &goal in &goals {
            let p2p = solver
                .execute(&Query::point_to_point(0, goal).with_paths(), &mut SolverScratch::new());
            assert_eq!(fan.goal_path_to(goal), p2p.goal_path(), "{}", solver.name());
            assert_eq!(fan.dist()[goal as usize], p2p.dist()[goal as usize], "{}", solver.name());
        }
    }
}

/// `ManyToMany` tables equal their row-wise `OneToMany` decomposition —
/// same distances, same paths, one row per source in request order.
#[test]
fn many_to_many_matches_rowwise_one_to_many() {
    let g = weighted(34);
    let n = g.num_vertices() as u32;
    let sources = [0u32, n / 2, n - 1];
    let goals = [3u32, n / 4, n - 2];
    for solver in weighted_solvers(&g) {
        let table = solver
            .execute(&Query::many_to_many(sources, goals).with_paths(), &mut SolverScratch::new());
        assert_eq!(table.rows().len(), sources.len(), "{}", solver.name());
        for (i, &s) in sources.iter().enumerate() {
            let row = solver
                .execute(&Query::one_to_many(s, goals).with_paths(), &mut SolverScratch::new());
            assert_eq!(
                table.rows()[i].dist,
                row.result().dist,
                "{}: row {i} diverged from its one-to-many solve",
                solver.name()
            );
            for &goal in &goals {
                assert_eq!(
                    table.path_in_row(i, goal),
                    row.goal_path_to(goal),
                    "{}: row {i} goal {goal} path diverged",
                    solver.name()
                );
            }
        }
        assert_eq!(
            table.distance_table(),
            sources
                .iter()
                .map(|&s| {
                    let full = solver.solve(s);
                    goals.iter().map(|&t| Some(full.dist[t as usize])).collect::<Vec<_>>()
                })
                .collect::<Vec<_>>(),
            "{}: table cells must be exact",
            solver.name()
        );
    }
}

/// Tentpole acceptance: `goal_path` on a *preprocessed* solver returns an
/// exact input-graph route — every hop is an edge of the input `CsrGraph`
/// (not merely of the shortcut-augmented graph) and the weights telescope
/// to the exact goal distance. Covers point-to-point and one-to-many, with
/// radius-stepping and baseline solvers behind the preprocessing, plus the
/// `RSP3` cache round-trip.
#[test]
fn preprocessed_goal_paths_ride_input_graph_edges() {
    let g = weighted(55);
    let n = g.num_vertices() as u32;
    let cache = std::env::temp_dir().join(format!("rs_rsp3_{}_{:p}.bin", std::process::id(), &g));
    std::fs::remove_file(&cache).ok();
    let solvers: Vec<Box<dyn SsspSolver + '_>> = vec![
        SolverBuilder::new(&g).preprocess(PreprocessConfig::new(1, 16)).build(),
        SolverBuilder::new(&g).preprocess(PreprocessConfig::new(3, 24)).build(),
        SolverBuilder::new(&g)
            .algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary })
            .preprocess(PreprocessConfig::new(2, 12))
            .build(),
        SolverBuilder::new(&g)
            .algorithm(Algorithm::DeltaStepping { delta: 2_000 })
            .preprocess(PreprocessConfig::new(1, 10))
            .build(),
        // Served from the RSP3 cache (build + reload): expansion chains
        // must survive the round-trip.
        SolverBuilder::new(&g).preprocess_cached(&cache, PreprocessConfig::new(2, 16)).build(),
        SolverBuilder::new(&g).preprocess_cached(&cache, PreprocessConfig::new(2, 16)).build(),
    ];
    let reference = SolverBuilder::new(&g).build();
    for solver in &solvers {
        assert!(
            solver.graph().num_edges() > g.num_edges(),
            "{}: preprocessing must add shortcuts for this test to bite",
            solver.name()
        );
        for (s, t) in [(0u32, n - 1), (n / 2, 1), (7, n / 3)] {
            let resp = solver
                .execute(&Query::point_to_point(s, t).with_paths(), &mut SolverScratch::new());
            let path = resp.goal_path().expect("connected grid");
            assert_eq!((path[0], *path.last().unwrap()), (s, t), "{}", solver.name());
            let mut acc = 0u64;
            for w in path.windows(2) {
                let weight = g.arc_weight(w[0], w[1]).unwrap_or_else(|| {
                    panic!(
                        "{}: hop {} -> {} is not an edge of the INPUT graph",
                        solver.name(),
                        w[0],
                        w[1]
                    )
                });
                acc += weight as u64;
            }
            assert_eq!(
                acc,
                reference.solve(s).dist[t as usize],
                "{}: input-graph route must telescope to the exact distance",
                solver.name()
            );
        }
        // One-to-many paths expand the same way.
        let goals = [n - 1, 1, n / 2];
        let fan =
            solver.execute(&Query::one_to_many(0, goals).with_paths(), &mut SolverScratch::new());
        for &t in &goals {
            let path = fan.goal_path_to(t).expect("connected grid");
            for w in path.windows(2) {
                assert!(
                    g.arc_weight(w[0], w[1]).is_some(),
                    "{}: one-to-many hop {} -> {} not in the input graph",
                    solver.name(),
                    w[0],
                    w[1]
                );
            }
        }
    }
    std::fs::remove_file(&cache).ok();
}

/// Wraps a solver to gate one slow query and count completed solves — the
/// instrumentation behind the streaming acceptance test.
struct GatedSolver<'g> {
    inner: Box<dyn SsspSolver + 'g>,
    slow_source: u32,
    gate: std::sync::atomic::AtomicBool,
    completed: std::sync::atomic::AtomicUsize,
}

impl SsspSolver for GatedSolver<'_> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn graph(&self) -> &CsrGraph {
        self.inner.graph()
    }

    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse {
        use std::sync::atomic::Ordering;
        if query.source() == self.slow_source {
            // The "slow" query finishes only after some other response has
            // been DELIVERED — if the batch did not stream, this would
            // deadlock (bounded by the timeout below).
            let start = std::time::Instant::now();
            while !self.gate.load(Ordering::SeqCst) {
                assert!(
                    start.elapsed() < std::time::Duration::from_secs(30),
                    "no response was delivered while the slow solve ran: batch is not streaming"
                );
                std::thread::yield_now();
            }
        }
        let response = self.inner.execute(query, scratch);
        self.completed.fetch_add(1, Ordering::SeqCst);
        response
    }
}

/// Tentpole acceptance: a streaming batch delivers its first response
/// before the final solve completes. One query is gated open only by the
/// delivery of another response, so the test deterministically deadlocks
/// (and times out loudly) if `stream` were to materialise the batch first.
#[test]
fn streaming_batch_delivers_before_final_solve_completes() {
    use std::sync::atomic::Ordering;
    let g = weighted(8);
    let n = g.num_vertices() as u32;
    let slow = n - 1;
    let solver = GatedSolver {
        inner: SolverBuilder::new(&g).build(),
        slow_source: slow,
        gate: std::sync::atomic::AtomicBool::new(false),
        completed: std::sync::atomic::AtomicUsize::new(0),
    };
    // Fast queries first: even a fully sequential pool (RS_NUM_THREADS=1)
    // completes and delivers them while the gated solve waits.
    let queries = [
        Query::single_source(0),
        Query::point_to_point(1, n / 2),
        Query::single_source(2),
        Query::single_source(slow), // the gated solve, last in claim order
    ];
    let mut deliveries: Vec<(usize, usize)> = Vec::new(); // (slot, completed-at-delivery)
    let stats = QueryBatch::new(&queries).stream(&solver, |slot, _resp| {
        let done = solver.completed.load(Ordering::SeqCst);
        if deliveries.is_empty() {
            assert!(
                done < queries.len(),
                "first response delivered only after every solve completed"
            );
        }
        deliveries.push((slot, done));
        solver.gate.store(true, Ordering::SeqCst);
    });
    assert_eq!(deliveries.len(), queries.len(), "every slot delivered");
    assert_eq!(stats.unique_solves, 4);
    assert_eq!(solver.completed.load(Ordering::SeqCst), 4);
}

/// Mixed batches are exact per slot: every response equals a fresh
/// execution of its query, across shapes and solvers.
#[test]
fn mixed_query_batches_match_fresh_executions() {
    let g = weighted(13);
    let n = g.num_vertices() as u32;
    let queries: Vec<Query> = vec![
        Query::point_to_point(0, n - 1).with_paths(),
        Query::single_source(5),
        Query::point_to_point(0, n - 1).with_paths(), // dup
        Query::point_to_point(n / 2, 3),
        Query::single_source(5), // dup
        Query::point_to_point(0, 0),
        Query::one_to_many(7, [n - 1, 3]).with_paths(),
        Query::one_to_many(7, [3, n - 1]).with_paths(), // dup by canonical goals
        Query::many_to_many([0, 9], [n / 2, n - 1]),
    ];
    for solver in weighted_solvers(&g).into_iter().take(6) {
        let outcome = QueryBatch::new(&queries).execute(&*solver);
        assert_eq!(outcome.responses.len(), queries.len());
        assert_eq!(outcome.stats.unique_solves, 6, "{}", solver.name());
        assert_eq!(outcome.stats.point_to_point, 4, "{}", solver.name());
        assert_eq!(outcome.stats.one_to_many, 2, "{}", solver.name());
        assert_eq!(outcome.stats.many_to_many, 1, "{}", solver.name());
        // 4 p2p goals + 2×2 one-to-many goals + 2 rows × 2 table goals,
        // all reachable on the connected grid.
        assert_eq!(outcome.stats.goals_requested, 4 + 4 + 4, "{}", solver.name());
        assert_eq!(outcome.stats.goals_reached, 4 + 4 + 4, "{}", solver.name());
        // 5 single-row uniques + the 2-row table.
        assert_eq!(outcome.stats.executed_solves, 5 + 2, "{}", solver.name());
        for (resp, q) in outcome.responses.iter().zip(&queries) {
            assert_eq!(resp.query, *q, "{}: response/query misalignment", solver.name());
            let fresh = solver.execute(q, &mut SolverScratch::new());
            assert_eq!(resp.dist(), fresh.dist(), "{}: {:?}", solver.name(), q.shape);
            assert_eq!(
                resp.distance_table(),
                fresh.distance_table(),
                "{}: {:?}",
                solver.name(),
                q.shape
            );
            if q.want_paths && q.is_goal_bounded() {
                assert_eq!(
                    resp.goal_paths(),
                    fresh.goal_paths(),
                    "{}: {:?}",
                    solver.name(),
                    q.shape
                );
            }
        }
    }
}

/// Wraps a solver to count completed executions — the producer-side probe
/// for the backpressure tests.
struct CountingSolver<'g> {
    inner: Box<dyn SsspSolver + 'g>,
    completed: std::sync::atomic::AtomicUsize,
}

impl SsspSolver for CountingSolver<'_> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn graph(&self) -> &CsrGraph {
        self.inner.graph()
    }

    fn execute(&self, query: &Query, scratch: &mut SolverScratch) -> QueryResponse {
        let response = self.inner.execute(query, scratch);
        self.completed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        response
    }
}

/// Serving acceptance: a bounded stream holds peak in-flight responses at
/// `O(capacity + threads)` regardless of batch length — a slow sink
/// **blocks the solver workers** instead of letting finished responses
/// pile up — and still delivers every response without deadlock. The
/// invariant checked at every delivery: responses completed but not yet
/// delivered ≤ channel capacity + one held in each blocked worker's
/// `send` + the one being delivered. Runs in CI at `RS_NUM_THREADS=1` and
/// nproc (the `queries` job) — the no-deadlock claim covers both.
#[test]
fn bounded_stream_applies_backpressure_without_deadlock() {
    use std::sync::atomic::Ordering;
    let g = weighted(55);
    let n = g.num_vertices() as u32;
    let solver = CountingSolver {
        inner: SolverBuilder::new(&g).build(),
        completed: std::sync::atomic::AtomicUsize::new(0),
    };
    // An analytics-shaped batch: 10k unique point-to-point rows (unique
    // (source, goal) pairs — duplicates would dedup away and not execute).
    let queries: Vec<Query> = (0..10_000u32).map(|i| Query::point_to_point(i / n, i % n)).collect();
    let batch = QueryBatch::new(&queries);
    assert_eq!(batch.unique_queries().len(), queries.len(), "all unique");

    let capacity = 4;
    let threads = par::num_threads();
    let mut delivered = 0usize;
    let mut peak_in_flight = 0usize;
    let stats = batch.stream_bounded(&solver, capacity, |_slot, resp| {
        delivered += 1;
        let completed = solver.completed.load(Ordering::SeqCst);
        let in_flight = completed - delivered;
        peak_in_flight = peak_in_flight.max(in_flight);
        assert!(
            in_flight <= capacity + threads,
            "memory bound violated: {in_flight} undelivered responses \
             with capacity {capacity} and {threads} workers"
        );
        // A deliberately slow sink: without backpressure the producers
        // would race ahead and buffer the whole batch.
        if delivered.is_multiple_of(50) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        drop(resp); // response freed before the next is accepted
    });
    assert_eq!(delivered, queries.len(), "every response delivered");
    assert_eq!(stats.unique_solves, queries.len());
    assert_eq!(solver.completed.load(Ordering::SeqCst), queries.len());
    // The bound must actually bind: with 2k queries and a tiny channel,
    // an unbounded implementation would show in-flight counts in the
    // hundreds (this assertion fails against mpsc::channel).
    assert!(
        peak_in_flight <= capacity + threads,
        "peak in-flight {peak_in_flight} exceeds capacity {capacity} + threads {threads}"
    );
}

/// The default `stream` capacity is pool-sized and the bounded path is
/// the only path: `stream` == `stream_bounded(default)` bit-for-bit.
#[test]
fn default_stream_is_bounded_and_identical() {
    let g = weighted(56);
    let n = g.num_vertices() as u32;
    let solver = SolverBuilder::new(&g).build();
    let queries: Vec<Query> =
        (0..40u32).map(|i| Query::point_to_point(i % n, (i * 5 + 2) % n)).collect();
    let batch = QueryBatch::new(&queries);

    assert!(QueryBatch::default_stream_capacity() >= 4);
    let mut via_default: Vec<Option<QueryResponse>> = vec![None; queries.len()];
    let s1 = batch.stream(&*solver, |slot, r| via_default[slot] = Some(r));
    let mut via_bounded: Vec<Option<QueryResponse>> = vec![None; queries.len()];
    let s2 = batch.stream_bounded(&*solver, QueryBatch::default_stream_capacity(), |slot, r| {
        via_bounded[slot] = Some(r)
    });
    assert_eq!(s1, s2);
    for (a, b) in via_default.iter().zip(&via_bounded) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.query, b.query);
        assert_eq!(a.dist(), b.dist());
    }
    // Degenerate capacities still complete (clamped to ≥ 1).
    let mut count = 0;
    batch.stream_bounded(&*solver, 0, |_, _| count += 1);
    assert_eq!(count, queries.len());
}

/// Serving acceptance: repeated `ManyToMany` tables draw per-task
/// scratches from a [`core::ScratchPool`] — after the first table has
/// populated the pool, further identical tables create **zero** new
/// scratches (`created()` stabilises at peak task concurrency) while
/// every row still reports `cold_solves == 0`.
#[test]
fn repeated_tables_reuse_pooled_scratches() {
    let g = weighted(77);
    let n = g.num_vertices() as u32;
    let query = Query::many_to_many([0, n / 3, n / 2, n - 1], [1, n / 4, n - 2]);
    for solver in weighted_solvers(&g).into_iter().take(4) {
        let pool = core::ScratchPool::new();
        let reference = solver.execute(&query, &mut SolverScratch::new());
        let _first = core::execute_many_to_many_pooled(&*solver, &query, &pool);
        let created_after_first = pool.created();
        assert!(created_after_first >= 1, "{}", solver.name());
        assert!(
            created_after_first as usize <= par::num_threads(),
            "{}: at most one scratch per pool task",
            solver.name()
        );
        for round in 0..6 {
            let table = core::execute_many_to_many_pooled(&*solver, &query, &pool);
            assert_eq!(
                pool.created(),
                created_after_first,
                "{}: round {round} created a scratch despite the pool",
                solver.name()
            );
            assert_eq!(
                table.distance_table(),
                reference.distance_table(),
                "{}: pooled table diverged",
                solver.name()
            );
            // Pooled scratches are pre-sized by their previous use: every
            // row runs warm.
            let mut stats = BatchStats::default();
            stats.absorb_unique(&table);
            assert_eq!(stats.cold_solves, 0, "{}: round {round}", solver.name());
            assert_eq!(stats.scratch_reuses, 4, "{}: round {round}", solver.name());
        }
        assert!(pool.reused() > 0, "{}", solver.name());
    }
}
