//! Query-plane conformance suite: every `SsspSolver` the builder can
//! construct answers [`Query`]s through the single `execute` entry point,
//! and must satisfy the same contract —
//!
//! * `execute(PointToPoint)` on a warm scratch is bit-identical to the
//!   cold path, settles the goal to exactly the full solve's value, and
//!   returns upper bounds everywhere else (the full-solve prefix);
//! * inline parents telescope: along every extracted path,
//!   `dist[v] == dist[parent[v]] + w(parent[v], v)`;
//! * unreachable goals terminate (finite work, `INF` goal, no path);
//! * a pre-warmed scratch (`warm_scratch`) makes even the *first* query
//!   allocation-free for every solver whose structures it covers;
//! * the acceptance bars: zero working-structure allocations for warm
//!   point-to-point queries on a 100k-vertex graph (asserted by the
//!   scratch counters), and strictly fewer steps than the full solve on a
//!   256×256 grid.
//!
//! Like the batch suite, this runs in CI at 1 and nproc threads (the
//! `queries` job); responses are deterministic per query, so the two runs
//! assert sequential == parallel by transitivity through the per-query
//! reference.

use radius_stepping::prelude::*;

/// Weighted test graph (seeded, failures reproduce).
fn weighted(seed: u64) -> CsrGraph {
    graph::weights::reweight(&graph::gen::grid2d(11, 12), WeightModel::paper_weighted(), seed)
}

/// Every weighted-capable algorithm family, spanning the paper's spectrum
/// (all three engines, every Dijkstra heap, two ∆ widths, Bellman–Ford).
fn weighted_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero },
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Infinite },
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(3_000) },
        Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Constant(3_000) },
        Algorithm::Dijkstra { heap: HeapKind::Dary },
        Algorithm::Dijkstra { heap: HeapKind::Pairing },
        Algorithm::Dijkstra { heap: HeapKind::Fibonacci },
        Algorithm::DeltaStepping { delta: 1_111 },
        Algorithm::DeltaStepping { delta: 50_000 },
        Algorithm::BellmanFord,
    ]
}

/// Builders for every weighted solver under test, including `Preprocessed`
/// variants (one attached to radius stepping, one to a baseline).
fn weighted_solvers<'g>(g: &'g CsrGraph) -> Vec<Box<dyn SsspSolver + 'g>> {
    let mut solvers: Vec<Box<dyn SsspSolver + 'g>> = weighted_algorithms()
        .into_iter()
        .map(|algorithm| SolverBuilder::new(g).algorithm(algorithm).build())
        .collect();
    solvers.push(SolverBuilder::new(g).preprocess(PreprocessConfig::new(1, 12)).build());
    solvers.push(
        SolverBuilder::new(g)
            .algorithm(Algorithm::DeltaStepping { delta: 2_500 })
            .preprocess(PreprocessConfig::new(1, 8))
            .build(),
    );
    solvers
}

/// The unit-weight-only solvers (BFS baseline + the unweighted engine).
fn unit_solvers(g: &CsrGraph) -> Vec<Box<dyn SsspSolver + '_>> {
    vec![
        SolverBuilder::new(g).algorithm(Algorithm::Bfs).build(),
        SolverBuilder::new(g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Unweighted,
                radii: Radii::Constant(2),
            })
            .build(),
    ]
}

/// Warm-vs-cold and full-prefix battery shared by the weighted and unit
/// runs: for each solver, one long-lived scratch serves interleaved
/// point-to-point queries that must match cold executions bit-for-bit and
/// the full solve at the goal.
fn assert_point_to_point_conformance(name: &str, g: &CsrGraph, solver: &dyn SsspSolver) {
    let n = g.num_vertices() as u32;
    let mut scratch = SolverScratch::new();
    let full = solver.execute(&Query::single_source(0), &mut SolverScratch::new());
    for (i, goal) in [0u32, n / 4, n - 1, n / 2, n / 4].into_iter().enumerate() {
        let query = Query::point_to_point(0, goal);
        let warm = solver.execute(&query, &mut scratch);
        let cold = solver.execute(&query, &mut SolverScratch::new());
        assert_eq!(
            warm.dist(),
            cold.dist(),
            "{name}: {} goal {goal}: warm scratch diverged from cold path",
            solver.name()
        );
        assert_eq!(
            warm.stats().clone_with_scratch_flag(false),
            cold.stats().clone_with_scratch_flag(false),
            "{name}: {} goal {goal}: warm/cold counters diverge",
            solver.name()
        );
        assert_eq!(
            warm.dist()[goal as usize],
            full.dist()[goal as usize],
            "{name}: {} goal {goal} must be settled exactly",
            solver.name()
        );
        assert_eq!(warm.goal_distance(), Some(full.dist()[goal as usize]));
        for (v, (&b, &f)) in warm.dist().iter().zip(full.dist()).enumerate() {
            assert!(
                b >= f,
                "{name}: {} vertex {v}: goal-bounded {b} below true distance {f}",
                solver.name()
            );
        }
        if i > 0 {
            assert!(
                warm.stats().scratch_reused,
                "{name}: {} query {i} reallocated on a warm scratch",
                solver.name()
            );
        }
    }
}

/// `StepStats` comparison helper: warm and cold runs must agree on every
/// counter except the scratch flag itself.
trait CloneWithFlag {
    fn clone_with_scratch_flag(&self, flag: bool) -> StepStats;
}

impl CloneWithFlag for StepStats {
    fn clone_with_scratch_flag(&self, flag: bool) -> StepStats {
        let mut s = self.clone();
        s.scratch_reused = flag;
        s
    }
}

#[test]
fn execute_point_to_point_conformance_weighted() {
    for seed in [3u64, 8] {
        let g = weighted(seed);
        for solver in weighted_solvers(&g) {
            assert_point_to_point_conformance(&format!("grid/{seed}"), &g, &*solver);
        }
    }
}

#[test]
fn execute_point_to_point_conformance_unit() {
    let g = graph::gen::grid2d(13, 14);
    for solver in unit_solvers(&g) {
        assert_point_to_point_conformance("unit-grid", &g, &*solver);
    }
    let sf = graph::gen::scale_free(300, 4, 6);
    for solver in unit_solvers(&sf) {
        assert_point_to_point_conformance("unit-scale-free", &sf, &*solver);
    }
}

/// Inline parents on `want_paths` point-to-point queries: the extracted
/// goal path exists, starts at the source, ends at the goal, and
/// telescopes (`dist[v] == dist[parent[v]] + w`) — for every algorithm,
/// engine, and heap, on warm scratches.
#[test]
fn inline_parents_telescope_on_point_to_point_queries() {
    let g = weighted(77);
    let n = g.num_vertices() as u32;
    for solver in weighted_solvers(&g) {
        let mut scratch = SolverScratch::new();
        for goal in [n - 1, n / 3, 1, n - 1] {
            let resp = solver.execute(&Query::point_to_point(0, goal).with_paths(), &mut scratch);
            let path = resp
                .goal_path()
                .unwrap_or_else(|| panic!("{}: goal {goal} reachable but no path", solver.name()));
            assert_eq!(path[0], 0, "{}", solver.name());
            assert_eq!(*path.last().unwrap(), goal, "{}", solver.name());
            let mut acc = 0u64;
            for w in path.windows(2) {
                acc += solver.graph().arc_weight(w[0], w[1]).unwrap_or_else(|| {
                    panic!("{}: path edge {}->{} missing", solver.name(), w[0], w[1])
                }) as u64;
            }
            assert_eq!(
                acc,
                resp.dist()[goal as usize],
                "{}: goal {goal} path does not telescope",
                solver.name()
            );
            // Contract sweep: EVERY recorded parent entry telescopes to
            // the response's dist array (goal-bounded exits must not leak
            // stale claims for unsettled fringe vertices).
            let parent = resp.result.parent.as_ref().unwrap();
            for v in 0..n {
                let p = parent[v as usize];
                if p == u32::MAX || p == v {
                    continue;
                }
                let w = solver.graph().arc_weight(p, v).unwrap_or_else(|| {
                    panic!("{}: parent edge {p}->{v} not in graph", solver.name())
                }) as u64;
                assert_eq!(
                    resp.dist()[p as usize] + w,
                    resp.dist()[v as usize],
                    "{}: stale parent {p} for vertex {v} after goal-bounded exit",
                    solver.name()
                );
            }
        }
    }
    // Unit-weight solvers: hop-count telescoping.
    let g = graph::gen::grid2d(12, 12);
    for solver in unit_solvers(&g) {
        let resp =
            solver.execute(&Query::point_to_point(0, 143).with_paths(), &mut SolverScratch::new());
        let path = resp.goal_path().expect("connected grid");
        assert_eq!(path.len() as u64 - 1, resp.dist()[143], "{}: hops", solver.name());
    }
}

/// Unreachable goals terminate with `INF`, no goal distance, and no path —
/// on warm scratches, for every solver.
#[test]
fn unreachable_goals_terminate() {
    // Two components: a weighted blob plus an isolated pair.
    let mut b = EdgeListBuilder::new(8);
    b.add_edge(0, 1, 3);
    b.add_edge(1, 2, 4);
    b.add_edge(2, 3, 2);
    b.add_edge(0, 3, 9);
    b.add_edge(6, 7, 5);
    let g = b.build();
    for solver in weighted_solvers(&g) {
        let mut scratch = SolverScratch::new();
        for _ in 0..2 {
            let resp = solver.execute(&Query::point_to_point(0, 6).with_paths(), &mut scratch);
            assert_eq!(resp.dist()[6], INF, "{}", solver.name());
            assert_eq!(resp.goal_distance(), None, "{}", solver.name());
            assert!(resp.goal_path().is_none(), "{}", solver.name());
            assert_eq!(resp.dist()[0], 0, "{}", solver.name());
        }
    }
    let mut b = EdgeListBuilder::new(5);
    b.add_edge(0, 1, 1);
    b.add_edge(1, 2, 1);
    let g = b.build();
    for solver in unit_solvers(&g) {
        let resp =
            solver.execute(&Query::point_to_point(0, 4).with_paths(), &mut SolverScratch::new());
        assert_eq!(resp.dist()[4], INF, "{}", solver.name());
        assert!(resp.goal_path().is_none(), "{}", solver.name());
    }
}

/// Satellite acceptance: after `warm_scratch`, the *first* query performs
/// zero scratch-managed allocations for every solver — each override
/// warms exactly its own structures (engine buffers and the BST treap
/// arena for radius stepping, the heap for Dijkstra, the bucket queue for
/// ∆-stepping; Bellman–Ford needs only the shared state).
#[test]
fn first_query_runs_warm_after_warm_scratch() {
    let g = weighted(5);
    let n = g.num_vertices() as u32;
    for algorithm in [
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(2_000) },
        Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Constant(2_000) },
        Algorithm::Dijkstra { heap: HeapKind::Dary },
        Algorithm::Dijkstra { heap: HeapKind::Fibonacci },
        Algorithm::DeltaStepping { delta: 1_500 },
        Algorithm::BellmanFord,
    ] {
        let solver = SolverBuilder::new(&g).algorithm(algorithm).build();
        let mut scratch = SolverScratch::new();
        solver.warm_scratch(&mut scratch);
        let first = solver.execute(&Query::point_to_point(0, n - 1), &mut scratch);
        assert!(
            first.stats().scratch_reused,
            "{}: first query after warm_scratch allocated",
            solver.name()
        );
        assert_eq!((scratch.solves(), scratch.reuses()), (1, 1), "{}", solver.name());
    }
}

/// Acceptance: `execute(PointToPoint)` on a warm scratch performs zero
/// working-structure allocations on a 100k-vertex graph — asserted by the
/// scratch counters across a stream of varied queries (`want_paths`
/// included: the parent tree is result output, not working state).
#[test]
fn warm_point_to_point_zero_allocations_on_100k_graph() {
    let g = graph::gen::grid2d(320, 320); // 102 400 vertices
    assert!(g.num_vertices() >= 100_000);
    let n = g.num_vertices() as u32;
    let solvers: Vec<Box<dyn SsspSolver>> = vec![
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Frontier,
                radii: Radii::Constant(40),
            })
            .build(),
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Bst,
                radii: Radii::Constant(40),
            })
            .build(),
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Unweighted,
                radii: Radii::Constant(40),
            })
            .build(),
        SolverBuilder::new(&g).algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary }).build(),
        SolverBuilder::new(&g).algorithm(Algorithm::DeltaStepping { delta: 3 }).build(),
    ];
    // Queries hop across the grid: different sources, goals, and path
    // requests, so any shape-dependent reallocation would surface.
    let stream: Vec<Query> = (0..8u32)
        .map(|i| {
            let (s, t) = ((i * 13_007) % n, (i * 29_501 + 640) % n);
            if i % 2 == 0 {
                Query::point_to_point(s, t).with_paths()
            } else {
                Query::point_to_point(s, t)
            }
        })
        .collect();
    for solver in solvers {
        let mut scratch = SolverScratch::new();
        solver.warm_scratch(&mut scratch);
        for (i, q) in stream.iter().enumerate() {
            let resp = solver.execute(q, &mut scratch);
            // warm_scratch covers every structure each of these solvers
            // touches (including the BST engine's treap-node arena), so
            // even query 0 must run allocation-free.
            assert!(
                resp.stats().scratch_reused,
                "{}: query {i} allocated working structures on a warm scratch",
                solver.name()
            );
            if q.want_paths {
                assert!(resp.goal_path().is_some(), "{}: query {i} lost its path", solver.name());
            }
        }
        assert_eq!(
            (scratch.solves(), scratch.reuses()),
            (stream.len() as u64, stream.len() as u64),
            "{}: every query must reuse the warm scratch",
            solver.name()
        );
    }
}

/// Acceptance: on a 256×256 grid the goal-bounded query settles the goal
/// exactly while taking strictly fewer steps than the full solve.
#[test]
fn point_to_point_takes_strictly_fewer_steps_on_256_grid() {
    let g = graph::gen::grid2d(256, 256);
    let n = g.num_vertices() as u32;
    let solvers: Vec<Box<dyn SsspSolver>> = vec![
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Frontier,
                radii: Radii::Constant(8),
            })
            .build(),
        SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping {
                engine: EngineKind::Unweighted,
                radii: Radii::Constant(8),
            })
            .build(),
        SolverBuilder::new(&g).algorithm(Algorithm::Dijkstra { heap: HeapKind::Dary }).build(),
    ];
    let goal = 2 * 256 + 40; // a few rows in: far from the source's far corner
    for solver in solvers {
        let mut scratch = SolverScratch::new();
        let full = solver.execute(&Query::single_source(0), &mut scratch);
        let bounded = solver.execute(&Query::point_to_point(0, goal), &mut scratch);
        assert_eq!(
            bounded.goal_distance(),
            Some(full.dist()[goal as usize]),
            "{}: goal must be exact",
            solver.name()
        );
        assert!(
            bounded.stats().steps < full.stats().steps,
            "{}: goal-bounded {} steps vs full {} — no early exit",
            solver.name(),
            bounded.stats().steps,
            full.stats().steps
        );
        assert_eq!(full.dist()[n as usize - 1], 255 + 255, "sanity: far corner");
    }
}

/// Mixed batches are exact per slot: every response equals a fresh
/// execution of its query, across shapes and solvers.
#[test]
fn mixed_query_batches_match_fresh_executions() {
    let g = weighted(13);
    let n = g.num_vertices() as u32;
    let queries: Vec<Query> = vec![
        Query::point_to_point(0, n - 1).with_paths(),
        Query::single_source(5),
        Query::point_to_point(0, n - 1).with_paths(), // dup
        Query::point_to_point(n / 2, 3),
        Query::single_source(5), // dup
        Query::point_to_point(0, 0),
    ];
    for solver in weighted_solvers(&g).into_iter().take(6) {
        let outcome = QueryBatch::new(&queries).execute(&*solver);
        assert_eq!(outcome.responses.len(), queries.len());
        assert_eq!(outcome.stats.unique_solves, 4, "{}", solver.name());
        assert_eq!(outcome.stats.point_to_point, 4, "{}", solver.name());
        assert_eq!(outcome.stats.goals_reached, 4, "{}", solver.name());
        for (resp, q) in outcome.responses.iter().zip(&queries) {
            assert_eq!(resp.query, *q, "{}: response/query misalignment", solver.name());
            let fresh = solver.execute(q, &mut SolverScratch::new());
            assert_eq!(resp.dist(), fresh.dist(), "{}: {:?}", solver.name(), q.shape);
            if q.want_paths && q.is_point_to_point() {
                assert_eq!(resp.goal_path(), fresh.goal_path(), "{}: {:?}", solver.name(), q.shape);
            }
        }
    }
}
