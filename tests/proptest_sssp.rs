//! Property-based integration tests: random graphs, random weights, random
//! radii — radius stepping must always equal Dijkstra, and preprocessing
//! must always establish the paper's preconditions.

use proptest::prelude::*;

use radius_stepping::prelude::*;
use rs_core::preprocess::ShortcutHeuristic;
use rs_core::verify::{check_k_rho_graph, step_bound, substep_bound};
use rs_core::{radius_stepping_with, EngineConfig, EngineKind};

/// Random connected weighted graph: a random spanning tree plus extra
/// random edges.
fn arb_connected_graph() -> impl Strategy<Value = CsrGraph> {
    (3usize..40, proptest::collection::vec((0u32..1000, 0u32..1000, 1u32..50), 0..120), 1u32..50)
        .prop_map(|(n, extra, tree_w)| {
            let mut b = EdgeListBuilder::new(n);
            for v in 1..n as u32 {
                // Deterministic "random" parent keeps the tree connected.
                let parent = (v.wrapping_mul(2654435761) >> 7) % v;
                b.add_edge(v, parent, (v % tree_w) + 1);
            }
            for (u, v, w) in extra {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn radius_stepping_equals_dijkstra_for_any_radii(
        g in arb_connected_graph(),
        radii_seed in proptest::collection::vec(0u64..100_000, 40),
        source in 0u32..3,
    ) {
        // §3: "The algorithm is correct for any radii r(·)."
        let n = g.num_vertices();
        let radii: Vec<Dist> = (0..n).map(|i| radii_seed[i % radii_seed.len()]).collect();
        let reference = baselines::dijkstra_default(&g, source);
        for kind in [EngineKind::Frontier, EngineKind::Bst] {
            let out = radius_stepping_with(
                &g, &RadiiSpec::PerVertex(&radii), source, kind, EngineConfig::default());
            prop_assert_eq!(&out.dist, &reference, "{:?}", kind);
        }
    }

    #[test]
    fn engines_step_sequences_identical(
        g in arb_connected_graph(),
        r in 0u64..10_000,
    ) {
        let f = radius_stepping_with(
            &g, &RadiiSpec::Constant(r), 0, EngineKind::Frontier, EngineConfig::with_trace());
        let b = radius_stepping_with(
            &g, &RadiiSpec::Constant(r), 0, EngineKind::Bst, EngineConfig::with_trace());
        prop_assert_eq!(f.stats.steps, b.stats.steps);
        prop_assert_eq!(f.stats.substeps, b.stats.substeps);
        let fd: Vec<Dist> = f.stats.trace.unwrap().iter().map(|t| t.d_i).collect();
        let bd: Vec<Dist> = b.stats.trace.unwrap().iter().map(|t| t.d_i).collect();
        prop_assert_eq!(fd, bd);
    }

    #[test]
    fn preprocessing_establishes_preconditions(
        g in arb_connected_graph(),
        k in 1u32..4,
        rho_frac in 2usize..6,
        h_pick in 0usize..3,
    ) {
        let n = g.num_vertices();
        let rho = (n / rho_frac).max(1);
        let h = [ShortcutHeuristic::Full, ShortcutHeuristic::Greedy, ShortcutHeuristic::Dp][h_pick];
        let pre = Preprocessed::build(&g, &PreprocessConfig { k, rho, heuristic: h });
        prop_assert!(pre.graph.check_invariants().is_ok());
        // Lemma 4.1 preconditions, brute-force checked.
        if let Err((v, msg)) = check_k_rho_graph(&pre.graph, &pre.radii, k, rho) {
            return Err(TestCaseError::fail(format!("{h:?} k={k} rho={rho}: {msg} at {v}")));
        }
        // And the theorems' conclusions.
        let out = pre.sssp_with(0, EngineKind::Frontier, EngineConfig::with_trace());
        prop_assert!(out.stats.max_substeps_in_step <= substep_bound(k));
        prop_assert!(out.stats.steps <= step_bound(n, rho, pre.graph.max_weight() as u64));
        prop_assert_eq!(out.dist, baselines::dijkstra_default(&g, 0));
    }

    #[test]
    fn shortcuts_never_change_distances(g in arb_connected_graph(), rho_frac in 2usize..5) {
        let rho = (g.num_vertices() / rho_frac).max(1);
        let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, rho));
        prop_assert_eq!(
            baselines::dijkstra_default(&pre.graph, 1),
            baselines::dijkstra_default(&g, 1)
        );
    }

    #[test]
    fn delta_stepping_and_bf_agree_on_random_graphs(g in arb_connected_graph(), delta in 1u64..200) {
        let reference = baselines::dijkstra_default(&g, 0);
        prop_assert_eq!(baselines::delta_stepping(&g, 0, delta).dist, reference.clone());
        prop_assert_eq!(baselines::bellman_ford(&g, 0).dist, reference);
    }

    // Batch dedup must be observationally invisible: for ANY source
    // multiset — duplicates, repeats, arbitrary order — `solve_batch`
    // returns exactly what per-source `solve` returns, slot for slot, and
    // the `QueryBatch` bookkeeping stays consistent.
    #[test]
    fn solve_batch_with_duplicates_matches_per_source(
        g in arb_connected_graph(),
        raw_sources in proptest::collection::vec(0u32..1000, 0..24),
        algo_pick in 0usize..4,
    ) {
        let n = g.num_vertices() as u32;
        let sources: Vec<VertexId> = raw_sources.iter().map(|&s| s % n).collect();
        let algorithm = [
            Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(40) },
            Algorithm::Dijkstra { heap: HeapKind::Dary },
            Algorithm::DeltaStepping { delta: 60 },
            Algorithm::BellmanFord,
        ][algo_pick].clone();
        let solver = SolverBuilder::new(&g).algorithm(algorithm).build();

        let plan = QueryBatch::from_sources(&sources);
        let unique: std::collections::HashSet<VertexId> = sources.iter().copied().collect();
        prop_assert_eq!(plan.len(), sources.len());
        prop_assert_eq!(plan.unique_queries().len(), unique.len());
        prop_assert_eq!(plan.deduplicated(), sources.len() - unique.len());

        let outcome = plan.execute(&*solver);
        prop_assert_eq!(outcome.responses.len(), sources.len());
        prop_assert_eq!(outcome.stats.solves, sources.len());
        prop_assert_eq!(outcome.stats.unique_solves, unique.len());
        prop_assert_eq!(outcome.stats.point_to_point, 0);
        prop_assert_eq!(
            outcome.stats.cold_solves + outcome.stats.scratch_reuses,
            outcome.stats.unique_solves
        );
        for (out, &s) in outcome.responses.iter().zip(&sources) {
            prop_assert_eq!(out.dist(), &solver.solve(s).dist[..], "source {}", s);
        }
    }

    // Empty and singleton batches are well-behaved for every algorithm,
    // and a singleton's result equals the plain solve.
    #[test]
    fn solve_batch_empty_and_singleton(g in arb_connected_graph(), s in 0u32..1000) {
        let n = g.num_vertices() as u32;
        let s = s % n;
        let solver = SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero })
            .build();
        prop_assert!(solver.solve_batch(&[]).is_empty());
        let single = solver.solve_batch(&[s]);
        prop_assert_eq!(single.len(), 1);
        prop_assert_eq!(&single[0].dist, &solver.solve(s).dist);
        // All-duplicates batch: one unique solve, three identical answers.
        let dup = QueryBatch::from_sources(&[s, s, s]);
        prop_assert_eq!(dup.unique_queries(), &[Query::single_source(s)][..]);
        let outcome = dup.execute(&*solver);
        prop_assert_eq!(outcome.stats.unique_solves, 1);
        for out in &outcome.responses {
            prop_assert_eq!(out.dist(), outcome.responses[0].dist());
        }
    }

    // One scratch, interleaved random sources: results must stay
    // bit-identical to fresh solves no matter the order (stale-state
    // fuzzing for the epoch reset).
    #[test]
    fn scratch_reuse_never_leaks_state(
        g in arb_connected_graph(),
        schedule in proptest::collection::vec(0u32..1000, 1..10),
    ) {
        let n = g.num_vertices() as u32;
        let solver = SolverBuilder::new(&g)
            .algorithm(Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(25) })
            .build();
        let mut scratch = SolverScratch::new();
        for s in schedule {
            let s = s % n;
            let warm = solver.solve_with_scratch(s, &mut scratch);
            prop_assert_eq!(&warm.dist, &solver.solve(s).dist, "source {}", s);
        }
    }
}
