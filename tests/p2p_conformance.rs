//! Point-to-point mode conformance: [`P2pMode::Bidirectional`] and
//! [`P2pMode::GoalDirected`] answer `execute(PointToPoint)` through the
//! same entry point as the forward default and must satisfy the same
//! contract —
//!
//! * the goal distance is **bit-identical** to the forward mode and the
//!   full solve, for every algorithm × engine × heap, on random and grid
//!   graphs (modes are wired on the frontier engine and the Dijkstra
//!   baseline; everywhere else they fall through to the forward path and
//!   must still be exact);
//! * every finite distance entry is a true upper bound (the kernels
//!   never publish an unreachable-looking value below the truth);
//! * warm scratches are bit-identical to cold ones, counters included;
//! * unreachable goals terminate in both modes (ALT with zero relaxed
//!   edges when a landmark proves the separation);
//! * extracted paths ride input-graph edges and telescope — including
//!   through a preprocessed solver's shortcut expander;
//! * the acceptance bar: on a 256×256 grid with far-apart endpoints,
//!   goal-directed search relaxes **≥ 5×** fewer edges than the forward
//!   early-exit, and bidirectional strictly fewer (from
//!   `StepStats::relaxed_edges`).
//!
//! Runs in CI at 1 and nproc threads (the `queries` job), like the other
//! conformance suites.

use radius_stepping::prelude::*;

/// Weighted grid (seeded, failures reproduce).
fn weighted_grid(seed: u64) -> CsrGraph {
    graph::weights::reweight(&graph::gen::grid2d(11, 12), WeightModel::paper_weighted(), seed)
}

/// Weighted random (scale-free) graph.
fn weighted_random(seed: u64) -> CsrGraph {
    graph::weights::reweight(
        &graph::gen::scale_free(400, 4, seed),
        WeightModel::paper_weighted(),
        seed,
    )
}

/// The algorithm spectrum the mode matrix runs over: all three engines
/// and every Dijkstra heap (modes are no-ops off the frontier engine and
/// the Dijkstra baseline, but must stay exact there too).
fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero },
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(3_000) },
        Algorithm::RadiusStepping { engine: EngineKind::Bst, radii: Radii::Constant(3_000) },
        Algorithm::Dijkstra { heap: HeapKind::Dary },
        Algorithm::Dijkstra { heap: HeapKind::Pairing },
        Algorithm::Dijkstra { heap: HeapKind::Fibonacci },
        Algorithm::DeltaStepping { delta: 2_500 },
    ]
}

const MODES: [P2pMode; 3] = [P2pMode::Forward, P2pMode::Bidirectional, P2pMode::GoalDirected];

fn mode_name(mode: P2pMode) -> &'static str {
    match mode {
        P2pMode::Forward => "forward",
        P2pMode::Bidirectional => "bidirectional",
        P2pMode::GoalDirected => "goal-directed",
        P2pMode::Auto => "auto",
    }
}

/// Warm-vs-cold, goal-exactness, and upper-bound battery for one solver.
fn assert_mode_conformance(
    name: &str,
    solver: &dyn SsspSolver,
    mode: P2pMode,
    full: &[Dist],
    pairs: &[(u32, u32)],
) {
    let mut scratch = SolverScratch::new();
    solver.warm_scratch(&mut scratch);
    for &(source, goal) in pairs {
        let query = Query::point_to_point(source, goal);
        let warm = solver.execute(&query, &mut scratch);
        let cold = solver.execute(&query, &mut SolverScratch::new());
        assert_eq!(
            warm.dist(),
            cold.dist(),
            "{name}/{}/{}: {source}->{goal} warm diverged from cold",
            solver.name(),
            mode_name(mode),
        );
        let mut warm_stats = warm.stats().clone();
        let mut cold_stats = cold.stats().clone();
        warm_stats.scratch_reused = false;
        cold_stats.scratch_reused = false;
        assert_eq!(
            warm_stats,
            cold_stats,
            "{name}/{}/{}: {source}->{goal} warm/cold counters diverge",
            solver.name(),
            mode_name(mode),
        );
        if source == 0 {
            assert_eq!(
                warm.dist()[goal as usize],
                full[goal as usize],
                "{name}/{}/{}: goal {goal} must be settled exactly",
                solver.name(),
                mode_name(mode),
            );
            for (v, (&b, &f)) in warm.dist().iter().zip(full).enumerate() {
                assert!(
                    b >= f,
                    "{name}/{}/{}: vertex {v}: entry {b} below true distance {f}",
                    solver.name(),
                    mode_name(mode),
                );
            }
        }
    }
}

/// Goal distances are bit-identical across all three modes, every
/// algorithm, warm and cold, on a random and a grid graph.
#[test]
fn modes_agree_bit_identically_across_algorithms() {
    for (name, g) in [("grid", weighted_grid(3)), ("random", weighted_random(6))] {
        let n = g.num_vertices() as u32;
        let full = SolverBuilder::new(&g)
            .build()
            .execute(&Query::single_source(0), &mut SolverScratch::new());
        let pairs = [(0, n - 1), (0, n / 2), (0, 1), (n / 3, n - 2), (0, 0)];
        for algorithm in algorithms() {
            for mode in MODES {
                let solver =
                    SolverBuilder::new(&g).algorithm(algorithm.clone()).p2p_mode(mode).build();
                assert_mode_conformance(name, &*solver, mode, full.dist(), &pairs);
            }
        }
        // Preprocessed solvers resolve landmarks from the preprocessing
        // artifact (Auto picks goal-directed there).
        for mode in [P2pMode::Bidirectional, P2pMode::GoalDirected, P2pMode::Auto] {
            let solver = SolverBuilder::new(&g)
                .preprocess(PreprocessConfig::new(1, 12))
                .p2p_mode(mode)
                .build();
            let mut scratch = SolverScratch::new();
            solver.warm_scratch(&mut scratch);
            for &(source, goal) in &pairs {
                let resp = solver.execute(&Query::point_to_point(source, goal), &mut scratch);
                let truth = solver
                    .execute(&Query::single_source(source), &mut SolverScratch::new())
                    .dist()[goal as usize];
                assert_eq!(
                    resp.dist()[goal as usize],
                    truth,
                    "{name}/preprocessed/{}: {source}->{goal}",
                    mode_name(mode),
                );
            }
        }
    }
}

/// Paths extracted under both new modes exist, telescope over
/// input-graph edges, and end where they should.
#[test]
fn mode_paths_ride_input_graph_edges() {
    let g = weighted_grid(77);
    let n = g.num_vertices() as u32;
    for mode in [P2pMode::Bidirectional, P2pMode::GoalDirected] {
        for algorithm in [
            Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero },
            Algorithm::Dijkstra { heap: HeapKind::Dary },
        ] {
            let solver = SolverBuilder::new(&g).algorithm(algorithm.clone()).p2p_mode(mode).build();
            let mut scratch = SolverScratch::new();
            for goal in [n - 1, n / 3, 1] {
                let resp =
                    solver.execute(&Query::point_to_point(0, goal).with_paths(), &mut scratch);
                let path = resp.goal_path().unwrap_or_else(|| {
                    panic!(
                        "{}/{}: goal {goal} reachable but no path",
                        solver.name(),
                        mode_name(mode)
                    )
                });
                assert_eq!(path[0], 0);
                assert_eq!(*path.last().unwrap(), goal);
                let mut acc = 0u64;
                for w in path.windows(2) {
                    acc += g.arc_weight(w[0], w[1]).unwrap_or_else(|| {
                        panic!(
                            "{}/{}: path edge {}->{} not in input graph",
                            solver.name(),
                            mode_name(mode),
                            w[0],
                            w[1]
                        )
                    }) as u64;
                }
                assert_eq!(
                    acc,
                    resp.dist()[goal as usize],
                    "{}/{}: goal {goal} path does not telescope",
                    solver.name(),
                    mode_name(mode),
                );
            }
        }
    }
    // Through a shortcut expander: the reply's path must still be
    // input-graph-exact (unpacked), whatever the mode.
    for mode in [P2pMode::Bidirectional, P2pMode::GoalDirected] {
        let solver =
            SolverBuilder::new(&g).preprocess(PreprocessConfig::new(1, 10)).p2p_mode(mode).build();
        let resp = solver
            .execute(&Query::point_to_point(0, n - 1).with_paths(), &mut SolverScratch::new());
        let path = resp.goal_path().expect("connected grid");
        let mut acc = 0u64;
        for w in path.windows(2) {
            acc += g.arc_weight(w[0], w[1]).unwrap_or_else(|| {
                panic!("preprocessed/{}: shortcut leaked into path", mode_name(mode))
            }) as u64;
        }
        assert_eq!(acc, resp.dist()[(n - 1) as usize], "preprocessed/{}", mode_name(mode));
    }
}

/// Unreachable goals terminate in both modes; the landmark separation
/// proof lets ALT answer without relaxing a single edge.
#[test]
fn unreachable_goals_terminate_in_both_modes() {
    let mut b = EdgeListBuilder::new(8);
    b.add_edge(0, 1, 3);
    b.add_edge(1, 2, 4);
    b.add_edge(2, 3, 2);
    b.add_edge(6, 7, 5);
    let g = b.build();
    for mode in [P2pMode::Bidirectional, P2pMode::GoalDirected] {
        for algorithm in [
            Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero },
            Algorithm::Dijkstra { heap: HeapKind::Pairing },
        ] {
            let solver = SolverBuilder::new(&g).algorithm(algorithm.clone()).p2p_mode(mode).build();
            let mut scratch = SolverScratch::new();
            for _ in 0..2 {
                let resp = solver.execute(&Query::point_to_point(0, 6).with_paths(), &mut scratch);
                assert_eq!(resp.dist()[6], INF, "{}/{}", solver.name(), mode_name(mode));
                assert_eq!(resp.goal_distance(), None, "{}/{}", solver.name(), mode_name(mode));
                assert!(resp.goal_path().is_none(), "{}/{}", solver.name(), mode_name(mode));
                assert_eq!(resp.dist()[0], 0, "{}/{}", solver.name(), mode_name(mode));
                if mode == P2pMode::GoalDirected {
                    assert_eq!(
                        resp.stats().relaxed_edges,
                        0,
                        "{}: landmark separation proof must skip the search",
                        solver.name(),
                    );
                }
            }
        }
    }
}

/// The acceptance bar: far-apart endpoints on a 256×256 grid. Forward
/// early-exit floods a ball that covers essentially the whole grid;
/// goal-directed search must scan **at least 5× fewer** edges and
/// bidirectional strictly fewer, all with bit-identical goal distances
/// and input-graph-exact paths.
#[test]
fn goal_directed_relaxes_5x_fewer_edges_on_256_grid() {
    let g =
        graph::weights::reweight(&graph::gen::grid2d(256, 256), WeightModel::paper_weighted(), 42);
    let n = g.num_vertices() as u32;
    let pairs = [(0u32, n - 1), (255u32, n - 256)]; // opposite corners
    for algorithm in [
        Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Constant(3_000) },
        Algorithm::Dijkstra { heap: HeapKind::Dary },
    ] {
        let forward = SolverBuilder::new(&g).algorithm(algorithm.clone()).build();
        let bidir = SolverBuilder::new(&g)
            .algorithm(algorithm.clone())
            .p2p_mode(P2pMode::Bidirectional)
            .build();
        let alt = SolverBuilder::new(&g)
            .algorithm(algorithm.clone())
            .p2p_mode(P2pMode::GoalDirected)
            .build();
        let mut scratch = SolverScratch::new();
        for &(source, goal) in &pairs {
            let query = Query::point_to_point(source, goal).with_paths();
            let f = forward.execute(&query, &mut scratch);
            let b = bidir.execute(&query, &mut scratch);
            let a = alt.execute(&query, &mut scratch);
            let truth = f.dist()[goal as usize];
            assert_eq!(b.dist()[goal as usize], truth, "{}: bidirectional", forward.name());
            assert_eq!(a.dist()[goal as usize], truth, "{}: goal-directed", forward.name());
            let (rf, rb, ra) =
                (f.stats().relaxed_edges, b.stats().relaxed_edges, a.stats().relaxed_edges);
            assert!(
                ra * 5 <= rf,
                "{}: {source}->{goal}: goal-directed relaxed {ra} edges, forward {rf} — \
                 want at least 5x fewer",
                forward.name(),
            );
            assert!(
                rb < rf,
                "{}: {source}->{goal}: bidirectional relaxed {rb} edges, forward {rf} — \
                 want strictly fewer",
                forward.name(),
            );
            // Input-graph-exact paths from both kernels.
            for (label, resp) in [("bidirectional", &b), ("goal-directed", &a)] {
                let path = resp.goal_path().expect("connected grid");
                let mut acc = 0u64;
                for w in path.windows(2) {
                    acc += g.arc_weight(w[0], w[1]).unwrap_or_else(|| {
                        panic!("{label}: path edge {}->{} not in input graph", w[0], w[1])
                    }) as u64;
                }
                assert_eq!(acc, truth, "{label}: path must telescope to the goal distance");
            }
        }
    }
}

/// `Auto` resolves to bidirectional without preprocessing (no landmarks
/// on the plain build) and to goal-directed with it — observable through
/// the relaxed-edge counters.
#[test]
fn auto_mode_picks_an_accelerated_kernel() {
    let g = weighted_grid(11);
    let n = g.num_vertices() as u32;
    let query = Query::point_to_point(0, n - 1);
    let forward = SolverBuilder::new(&g).build();
    let auto = SolverBuilder::new(&g).p2p_mode(P2pMode::Auto).build();
    let f = forward.execute(&query, &mut SolverScratch::new());
    let a = auto.execute(&query, &mut SolverScratch::new());
    assert_eq!(a.dist()[(n - 1) as usize], f.dist()[(n - 1) as usize]);
    assert!(
        a.stats().relaxed_edges < f.stats().relaxed_edges,
        "auto ({} edges) must accelerate over forward ({} edges)",
        a.stats().relaxed_edges,
        f.stats().relaxed_edges,
    );
}
