//! Every shortest-path implementation in the workspace must agree exactly
//! on every graph family, across its whole parameter range — all built
//! through `SolverBuilder` and used through the `SsspSolver` trait.

use radius_stepping::prelude::*;

fn graphs() -> Vec<(&'static str, CsrGraph)> {
    let w = |g: &CsrGraph, s| graph::weights::reweight(g, WeightModel::paper_weighted(), s);
    vec![
        ("grid2d", w(&graph::gen::grid2d(13, 17), 1)),
        ("grid3d", w(&graph::gen::grid3d(5, 6, 7), 2)),
        ("road", w(&graph::gen::road_network(15, 3), 3)),
        ("web", w(&graph::gen::scale_free(300, 4, 4), 4)),
        ("erdos_renyi", w(&graph::gen::erdos_renyi(150, 500, 5), 5)),
        ("path", w(&graph::gen::path(40), 6)),
        ("star", w(&graph::gen::star(40), 7)),
        ("complete", w(&graph::gen::complete(30), 8)),
        ("cycle", w(&graph::gen::cycle(50), 9)),
        ("fig2_gadget", w(&graph::gen::fig2_gadget(8, 4), 10)),
    ]
}

/// Every weighted algorithm the builder can construct.
fn weighted_algorithms() -> Vec<Algorithm> {
    let mut algorithms = vec![
        Algorithm::Dijkstra { heap: HeapKind::Dary },
        Algorithm::Dijkstra { heap: HeapKind::Pairing },
        Algorithm::Dijkstra { heap: HeapKind::Fibonacci },
        Algorithm::BellmanFord,
    ];
    for delta in [1u64, 777, 10_000, 1 << 20] {
        algorithms.push(Algorithm::DeltaStepping { delta });
    }
    for radii in [Radii::Zero, Radii::Infinite, Radii::Constant(5_000)] {
        for engine in [EngineKind::Frontier, EngineKind::Bst] {
            algorithms.push(Algorithm::RadiusStepping { engine, radii: radii.clone() });
        }
    }
    algorithms
}

#[test]
fn all_weighted_solvers_agree() {
    for (name, g) in graphs() {
        let source = (g.num_vertices() / 2) as u32;
        let reference = baselines::dijkstra_default(&g, source);
        for algorithm in weighted_algorithms() {
            let solver = SolverBuilder::new(&g).algorithm(algorithm).build();
            assert_eq!(solver.solve(source).dist, reference, "{name}: {}", solver.name());
        }
    }
}

#[test]
fn unweighted_solvers_agree_with_bfs() {
    for (name, g) in [
        ("grid2d", graph::gen::grid2d(20, 21)),
        ("web", graph::gen::scale_free(400, 3, 11)),
        ("road", graph::gen::road_network(16, 12)),
    ] {
        let source = 1u32;
        let bfs = baselines::bfs_seq(&g, source);
        for algorithm in [
            Algorithm::Bfs,
            Algorithm::Dijkstra { heap: HeapKind::Dary },
            Algorithm::RadiusStepping { engine: EngineKind::Frontier, radii: Radii::Zero },
            Algorithm::RadiusStepping { engine: EngineKind::Unweighted, radii: Radii::Zero },
        ] {
            let solver = SolverBuilder::new(&g).algorithm(algorithm).build();
            assert_eq!(solver.solve(source).dist, bfs, "{name}: {}", solver.name());
        }
        let pre = SolverBuilder::new(&g).preprocess(PreprocessConfig::new(1, 10)).build();
        assert_eq!(pre.solve(source).dist, bfs, "{name}: preprocessed radius stepping");
    }
}

#[test]
fn zero_radius_step_count_equals_distinct_distances() {
    // With r ≡ 0, each step settles exactly one distance value (§5.3's
    // ρ = 1 ≈ "Dijkstra extracting equal distances together").
    for (name, g) in graphs() {
        let source = 0u32;
        let out = core::radius_stepping(&g, &RadiiSpec::Zero, source);
        let mut finite: Vec<Dist> =
            out.dist.iter().copied().filter(|&d| d != INF && d > 0).collect();
        finite.sort_unstable();
        finite.dedup();
        assert_eq!(out.stats.steps, finite.len(), "{name}");
    }
}

#[test]
fn bellman_ford_and_infinite_radius_have_same_depth_structure() {
    // r ≡ ∞ makes radius stepping one step of Bellman–Ford substeps. The
    // baseline's first round relaxes the source itself (which radius
    // stepping does during initialisation), so substeps = BF rounds − 1.
    for (name, g) in graphs() {
        let bf = baselines::bellman_ford(&g, 2);
        let out = core::radius_stepping(&g, &RadiiSpec::Infinite, 2);
        assert_eq!(out.dist, bf.dist, "{name}");
        assert_eq!(out.stats.steps, 1, "{name}");
        assert_eq!(bf.stats.steps, 1, "{name}: BF is one paper-step");
        assert_eq!(out.stats.substeps, bf.stats.substeps - 1, "{name}: substeps vs BF rounds");
    }
}
