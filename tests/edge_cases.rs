//! Boundary conditions across the whole stack: tiny graphs, extreme
//! weights, extreme radii, disconnection, and stress-scale determinism.

use radius_stepping::prelude::*;
use rs_core::preprocess::compute_radii;
use rs_core::{radius_stepping_with, EngineConfig, EngineKind};

#[test]
fn two_vertex_graph() {
    let mut b = EdgeListBuilder::new(2);
    b.add_edge(0, 1, 7);
    let g = b.build();
    for kind in [EngineKind::Frontier, EngineKind::Bst] {
        for radii in [RadiiSpec::Zero, RadiiSpec::Infinite, RadiiSpec::Constant(3)] {
            let out = radius_stepping_with(&g, &radii, 0, kind, EngineConfig::default());
            assert_eq!(out.dist, vec![0, 7]);
        }
    }
}

#[test]
fn isolated_source() {
    let g = CsrGraph::empty(5);
    let out = core::radius_stepping(&g, &RadiiSpec::Constant(10), 2);
    assert_eq!(out.dist[2], 0);
    assert_eq!(out.dist.iter().filter(|&&d| d == INF).count(), 4);
    assert_eq!(out.stats.steps, 0);
}

#[test]
fn maximum_weight_edges() {
    // Weights at the u32 ceiling must not overflow u64 distances.
    let mut b = EdgeListBuilder::new(4);
    b.add_edge(0, 1, u32::MAX);
    b.add_edge(1, 2, u32::MAX);
    b.add_edge(2, 3, u32::MAX);
    let g = b.build();
    let out = core::radius_stepping(&g, &RadiiSpec::Zero, 0);
    assert_eq!(out.dist[3], 3 * (u32::MAX as u64));
    assert_eq!(out.dist, baselines::dijkstra_default(&g, 0));
    // ∆-stepping with small ∆ would need 3·2³² buckets; the cyclic queue
    // must handle the window, so use a proportionate ∆.
    assert_eq!(baselines::delta_stepping(&g, 0, u32::MAX as u64).dist, out.dist);
}

#[test]
fn radii_larger_than_graph_diameter() {
    let g = graph::weights::reweight(&graph::gen::cycle(12), WeightModel::paper_weighted(), 3);
    let out = core::radius_stepping(&g, &RadiiSpec::Constant(u64::MAX / 2), 0);
    assert_eq!(out.stats.steps, 1, "everything inside the first annulus");
    assert_eq!(out.dist, baselines::dijkstra_default(&g, 0));
}

#[test]
fn rho_equals_n() {
    // r_ρ(v) with ρ = n: radius is the eccentricity; still valid.
    let g = graph::weights::reweight(&graph::gen::grid2d(5, 5), WeightModel::paper_weighted(), 8);
    let radii = compute_radii(&g, 25);
    assert!(radii.iter().all(|&r| r != INF));
    let out = core::radius_stepping(&g, &RadiiSpec::PerVertex(&radii), 0);
    assert_eq!(out.dist, baselines::dijkstra_default(&g, 0));
}

#[test]
fn rho_exceeding_n_gives_inf_radii_and_one_step() {
    let g = graph::gen::path(6);
    let radii = compute_radii(&g, 100);
    assert!(radii.iter().all(|&r| r == INF));
    let out = core::radius_stepping(&g, &RadiiSpec::PerVertex(&radii), 0);
    assert_eq!(out.stats.steps, 1);
    assert_eq!(out.dist[5], 5);
}

#[test]
fn preprocessing_on_disconnected_graph() {
    // Two components: balls never cross; each component solves correctly.
    let mut b = EdgeListBuilder::new(8);
    for (u, v) in [(0, 1), (1, 2), (2, 3)] {
        b.add_edge(u, v, 5);
    }
    for (u, v) in [(4, 5), (5, 6), (6, 7)] {
        b.add_edge(u, v, 3);
    }
    let g = b.build();
    let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 3));
    let out = pre.sssp(0);
    assert_eq!(out.dist[3], 15);
    assert!(out.dist[4..].iter().all(|&d| d == INF));
    let out2 = pre.sssp(7);
    assert_eq!(out2.dist[4], 9);
    assert!(out2.dist[..4].iter().all(|&d| d == INF));
}

#[test]
fn duplicate_and_reverse_edges_collapse() {
    let mut b = EdgeListBuilder::new(3);
    for w in [9u32, 4, 7] {
        b.add_edge(0, 1, w);
        b.add_edge(1, 0, w + 1);
    }
    b.add_edge(1, 2, 2);
    let g = b.build();
    assert_eq!(g.arc_weight(0, 1), Some(4));
    let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 2));
    assert_eq!(pre.sssp(0).dist, vec![0, 4, 6]);
}

#[test]
fn stress_determinism_across_runs_and_engines() {
    // A mid-size graph: two engines, two runs, one answer — including all
    // counters (substep counts are synchronous, hence schedule-free).
    let g = graph::weights::reweight(
        &graph::gen::road_network(40, 17),
        WeightModel::paper_weighted(),
        18,
    );
    let pre = Preprocessed::build(&g, &PreprocessConfig::new(2, 20));
    let runs: Vec<_> = (0..2)
        .flat_map(|_| {
            [EngineKind::Frontier, EngineKind::Bst].map(|k| {
                let out = pre.sssp_with(5, k, EngineConfig::with_trace());
                (out.dist, out.stats.steps, out.stats.substeps)
            })
        })
        .collect();
    for r in &runs[1..] {
        assert_eq!(r.0, runs[0].0);
        assert_eq!(r.1, runs[0].1);
        assert_eq!(r.2, runs[0].2, "substep counts must be deterministic");
    }
}

#[test]
fn weight_one_and_weight_l_extremes_in_same_graph() {
    // Mixing the lightest and heaviest legal weights exercises the
    // log(ρL) term's worst case.
    let mut b = EdgeListBuilder::new(6);
    b.add_edge(0, 1, 1);
    b.add_edge(1, 2, 10_000);
    b.add_edge(2, 3, 1);
    b.add_edge(3, 4, 10_000);
    b.add_edge(0, 5, 10_000);
    let g = b.build();
    let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 2));
    let out = pre.sssp(0);
    assert_eq!(out.dist, baselines::dijkstra_default(&g, 0));
}
