//! End-to-end pipeline tests: generate → preprocess → solve → verify,
//! across heuristics, k, ρ, engines and graph families.

use radius_stepping::prelude::*;
use rs_core::preprocess::ShortcutHeuristic;
use rs_core::verify::{check_k_rho_graph, step_bound, substep_bound};
use rs_core::{EngineConfig, EngineKind};

fn family(seed: u64) -> Vec<(&'static str, CsrGraph)> {
    vec![
        (
            "grid2d",
            graph::weights::reweight(
                &graph::gen::grid2d(14, 15),
                WeightModel::paper_weighted(),
                seed,
            ),
        ),
        (
            "road",
            graph::weights::reweight(
                &graph::gen::road_network(14, seed),
                WeightModel::paper_weighted(),
                seed + 1,
            ),
        ),
        (
            "scale_free",
            graph::weights::reweight(
                &graph::gen::scale_free(220, 3, seed),
                WeightModel::paper_weighted(),
                seed + 2,
            ),
        ),
        ("unweighted_grid3d", graph::gen::grid3d(6, 6, 6)),
    ]
}

#[test]
fn full_pipeline_all_configs() {
    for (name, g) in family(11) {
        let reference = baselines::dijkstra_default(&g, 3);
        for (k, rho, h) in [
            (1u32, 8usize, ShortcutHeuristic::Full),
            (2, 8, ShortcutHeuristic::Greedy),
            (2, 8, ShortcutHeuristic::Dp),
            (4, 24, ShortcutHeuristic::Dp),
        ] {
            let pre = Preprocessed::build(&g, &PreprocessConfig { k, rho, heuristic: h });
            pre.graph.check_invariants().unwrap();
            for kind in [EngineKind::Frontier, EngineKind::Bst] {
                let out = pre.sssp_with(3, kind, EngineConfig::with_trace());
                assert_eq!(out.dist, reference, "{name} k={k} rho={rho} {h:?} {kind:?}");
                assert!(
                    out.stats.max_substeps_in_step <= substep_bound(k),
                    "{name} k={k}: {} substeps",
                    out.stats.max_substeps_in_step
                );
                assert!(
                    out.stats.steps
                        <= step_bound(g.num_vertices(), rho, pre.graph.max_weight() as u64),
                    "{name} rho={rho}: step bound violated"
                );
            }
        }
    }
}

#[test]
fn preprocessing_yields_exact_k_rho_graphs() {
    // Brute-force Lemma 4.1 verification on every family member.
    for (name, g) in family(23) {
        for (k, rho, h) in [
            (1u32, 6usize, ShortcutHeuristic::Full),
            (3, 10, ShortcutHeuristic::Greedy),
            (3, 10, ShortcutHeuristic::Dp),
        ] {
            let pre = Preprocessed::build(&g, &PreprocessConfig { k, rho, heuristic: h });
            check_k_rho_graph(&pre.graph, &pre.radii, k, rho)
                .unwrap_or_else(|(v, msg)| panic!("{name} {h:?}: {msg} (vertex {v})"));
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let g = graph::weights::reweight(
        &graph::gen::road_network(12, 5),
        WeightModel::paper_weighted(),
        9,
    );
    let cfg = PreprocessConfig::new(2, 12).with_heuristic(ShortcutHeuristic::Dp);
    let a = Preprocessed::build(&g, &cfg);
    let b = Preprocessed::build(&g, &cfg);
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.radii, b.radii);
    assert_eq!(a.stats, b.stats);
    let ra = a.sssp_with(0, EngineKind::Frontier, EngineConfig::with_trace());
    let rb = b.sssp_with(0, EngineKind::Frontier, EngineConfig::with_trace());
    assert_eq!(ra.dist, rb.dist);
    assert_eq!(ra.stats.steps, rb.stats.steps);
    assert_eq!(ra.stats.substeps, rb.stats.substeps);
}

#[test]
fn distances_preserved_by_shortcutting() {
    for (name, g) in family(31) {
        let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 12));
        for s in [0u32, 7] {
            assert_eq!(
                baselines::dijkstra_default(&pre.graph, s),
                baselines::dijkstra_default(&g, s),
                "{name}: shortcuts changed distances"
            );
        }
    }
}

#[test]
fn multi_source_reuse() {
    // The headline use-case: one preprocessing, many sources.
    let g =
        graph::weights::reweight(&graph::gen::grid2d(12, 12), WeightModel::paper_weighted(), 77);
    let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 16));
    for s in 0..24u32 {
        assert_eq!(pre.sssp(s * 6).dist, baselines::dijkstra_default(&g, s * 6));
    }
}

#[test]
fn path_extraction_on_preprocessed_graph() {
    let g = graph::weights::reweight(
        &graph::gen::road_network(10, 2),
        WeightModel::paper_weighted(),
        3,
    );
    let pre = Preprocessed::build(&g, &PreprocessConfig::new(1, 10));
    let out = pre.sssp(0);
    for t in [1u32, 50, 99] {
        let path = out.path_to(&pre.graph, t).expect("connected road network");
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), t);
        // Path weights (in the augmented graph) telescope to the distance.
        let mut acc = 0u64;
        for w in path.windows(2) {
            acc += pre.graph.arc_weight(w[0], w[1]).unwrap() as u64;
        }
        assert_eq!(acc, out.dist[t as usize]);
    }
}
